"""Array-kernel speedups — the ``--trace-kernels array`` tier (perf layer 4).

Two protocols, both cold (``memo=False``, fresh models, warm profiles):

* **named kernels** — exactly the loops the array tier vectorizes: the
  dual-port memory-profiling replay (calibration), the predictor replay
  (oracle closed form + inlined history fold), and the charge-census
  segment fold, timed per workload as one pass under the RLE tier vs the
  array tier.  The suite median is recorded as ``array_speedup`` and
  gated at >= 5x.
* **cold single-workload simulation** — the full per-workload simulate
  stage (calibration + OOO path costs + RLE + replay + census), recorded
  as ``simulation_speedup``.  The OOO path walk is inherently sequential
  Python (the array tier only gains its periodic steady-state closure
  and lane batching), so this end-to-end number is Amdahl-limited well
  below the named-kernel speedup; it is recorded and regression-gated by
  the CI ratio check, not held to 5x.  ``docs/performance.md`` has the
  breakdown.

Every timed pair is also checked for *identity*: the array tier must
produce the same predictor counters, censuses and path costs as the RLE
tier (the property tests already enforce this exhaustively; the bench
re-asserts it on the real suite so a perf number can never come from a
divergent kernel).
"""

import statistics
import time

from repro.accel.invocation import (
    HistoryPredictor,
    OraclePredictor,
    evaluate_predictor_runs,
    evaluate_predictor_runs_array,
)
from repro.reporting import format_table
from repro.sim.array_kernels import (
    backend_name,
    census_from_segments_array,
    runs_to_columns,
)
from repro.sim.cache import profile_stream_dual, profile_stream_dual_array
from repro.sim.offload import OffloadSimulator
from repro.sim.trace_kernels import census_from_segments, run_length_encode

from .conftest import save_result, update_bench_json

#: gate on the suite-median named-kernel speedup (the ISSUE target)
ARRAY_SPEEDUP_GATE = 5.0
#: sanity floor for the Amdahl-limited end-to-end simulate stage
SIMULATION_SPEEDUP_FLOOR = 1.5

_BEST_OF = 5


def _best_of(fn, rounds=_BEST_OF):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _census_tables(census):
    return (census.run_starts, census.pipelined, census.failures, census.host)


def _named_kernel_pair(a, hier, pipelined):
    """(rle_seconds, array_seconds) of the vectorized loops, identity-checked."""
    targets = set(a.path_frame.region.source_paths)
    profile = a.profiled.paths
    mem = a.profiled.trace.memory
    rle = run_length_encode(profile.trace)

    def rle_tier():
        if mem:
            profile_stream_dual(hier, mem)
        orc = evaluate_predictor_runs(rle.runs, targets, OraclePredictor(targets))
        hist = evaluate_predictor_runs(rle.runs, targets, HistoryPredictor())
        return (
            census_from_segments(orc.segments, targets, pipelined),
            census_from_segments(hist.segments, targets, pipelined),
            orc,
            hist,
        )

    def array_tier():
        if mem:
            profile_stream_dual_array(hier, mem)
        cols = runs_to_columns(rle.runs)
        orc = evaluate_predictor_runs_array(
            rle.runs, targets, OraclePredictor(targets), columns=cols
        )
        hist = evaluate_predictor_runs_array(rle.runs, targets, HistoryPredictor())
        return (
            census_from_segments_array(
                orc.segments, targets, pipelined, columns=orc.segment_columns
            ),
            census_from_segments_array(
                hist.segments, targets, pipelined, columns=hist.segment_columns
            ),
            orc,
            hist,
        )

    ref_oc, ref_hc, ref_orc, ref_hist = rle_tier()
    got_oc, got_hc, got_orc, got_hist = array_tier()
    assert _census_tables(got_oc) == _census_tables(ref_oc), a.name
    assert _census_tables(got_hc) == _census_tables(ref_hc), a.name
    for ref, got in ((ref_orc, got_orc), (ref_hist, got_hist)):
        assert (got.true_positives, got.false_positives,
                got.true_negatives, got.false_negatives) == (
            ref.true_positives, ref.false_positives,
            ref.true_negatives, ref.false_negatives), a.name
    return _best_of(rle_tier), _best_of(array_tier)


def _simulate_stage_pair(a):
    """(rle_seconds, array_seconds) of the cold per-workload simulate stage."""
    targets = set(a.path_frame.region.source_paths)
    profile = a.profiled.paths
    trace = a.profiled.trace

    def stage(mode):
        sim = OffloadSimulator(memo=False, trace_kernels=mode)
        pipelined = sim.config.offload.pipelined_invocations
        cal = sim.calibrate(trace)
        costs = sim.path_costs(profile, cal.host_load_latency)
        rle = sim._rle(profile)
        orc = evaluate_predictor_runs_array(
            rle.runs, targets, OraclePredictor(targets), columns=rle.columns()
        ) if mode == "array" else evaluate_predictor_runs(
            rle.runs, targets, OraclePredictor(targets)
        )
        if mode == "array":
            census = census_from_segments_array(
                orc.segments, targets, pipelined, columns=orc.segment_columns
            )
        else:
            census = census_from_segments(orc.segments, targets, pipelined)
        return costs, census

    ref_costs, ref_census = stage("rle")
    got_costs, got_census = stage("array")
    assert _census_tables(got_census) == _census_tables(ref_census), a.name
    assert {pid: c.cycles for pid, c in got_costs.items()} == {
        pid: c.cycles for pid, c in ref_costs.items()
    }, a.name
    return _best_of(lambda: stage("rle")), _best_of(lambda: stage("array"))


def _compute(analyses):
    hier = OffloadSimulator().config.memory
    pipelined = OffloadSimulator().config.offload.pipelined_invocations
    rows = []
    for a in analyses:
        k_rle, k_arr = _named_kernel_pair(a, hier, pipelined)
        s_rle, s_arr = _simulate_stage_pair(a)
        rows.append((
            a.name,
            round(k_rle * 1e3, 2), round(k_arr * 1e3, 2),
            round(k_rle / k_arr, 2),
            round(s_rle * 1e3, 2), round(s_arr * 1e3, 2),
            round(s_rle / s_arr, 2),
        ))
    return rows


def test_array_kernel_speedup(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "kern rle ms", "kern array ms", "kern x",
         "sim rle ms", "sim array ms", "sim x"],
        rows,
        title="Array kernels (backend=%s): named loops and cold simulate stage"
              % backend_name(),
    )
    save_result("array_kernels", text)

    kernel_speedups = [r[3] for r in rows]
    sim_speedups = [r[6] for r in rows]
    array_speedup = round(statistics.median(kernel_speedups), 2)
    simulation_speedup = round(statistics.median(sim_speedups), 2)
    update_bench_json("array_kernels", {
        "backend": backend_name(),
        "workloads": len(rows),
        "array_speedup": array_speedup,
        "array_speedup_min": min(kernel_speedups),
        "workloads_at_5x": sum(s >= ARRAY_SPEEDUP_GATE for s in kernel_speedups),
        "simulation_speedup": simulation_speedup,
    })

    # the vectorized loops themselves must clear the 5x bar (suite median);
    # the gate only binds under numpy — the pure-Python backend is a
    # correctness fallback, not a speed tier
    if backend_name() == "numpy":
        assert array_speedup >= ARRAY_SPEEDUP_GATE, (
            "named-kernel median %.2fx below %.1fx gate"
            % (array_speedup, ARRAY_SPEEDUP_GATE)
        )
        assert simulation_speedup >= SIMULATION_SPEEDUP_FLOOR, (
            "simulate-stage median %.2fx below %.1fx floor"
            % (simulation_speedup, SIMULATION_SPEEDUP_FLOOR)
        )
