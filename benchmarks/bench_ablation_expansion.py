"""Ablation — pipelined back-to-back invocations (§IV-A target expansion).

BL-paths are acyclic; offload across loop back edges only pays when the
accelerator chains consecutive invocations (the paper enlarges units 2x by
sequencing the repeating path).  Turning pipelining off makes every
invocation pay the full schedule makespan, which is the penalty the
expansion machinery exists to avoid.
"""

import dataclasses
import statistics

from repro import NeedlePipeline, workloads
from repro.reporting import format_table
from repro.sim import DEFAULT_CONFIG

from .conftest import save_result

TARGETS = ["470.lbm", "183.equake", "streamcluster", "482.sphinx3", "444.namd"]


def _compute():
    on = NeedlePipeline(DEFAULT_CONFIG)
    off_cfg = dataclasses.replace(
        DEFAULT_CONFIG,
        offload=dataclasses.replace(
            DEFAULT_CONFIG.offload, pipelined_invocations=False
        ),
    )
    off = NeedlePipeline(off_cfg)
    rows = []
    for name in TARGETS:
        w = workloads.get(name)
        a = on.evaluate(w).braid
        b = off.evaluate(w).braid
        rows.append(
            (
                name,
                a.performance_improvement * 100,
                b.performance_improvement * 100,
                (a.performance_improvement - b.performance_improvement) * 100,
            )
        )
    return rows


def test_ablation_invocation_pipelining(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    text = format_table(
        ["workload", "pipelined %", "unpipelined %", "delta pp"],
        rows,
        title="Ablation: pipelined invocations (SIV-A expansion benefit)",
    )
    save_result("ablation_expansion", text)

    # pipelining across back-to-back invocations is where the loop-heavy
    # high-ILP workloads earn most of their speedup
    assert all(r[3] >= -1e-6 for r in rows)
    assert statistics.mean(r[3] for r in rows) > 10.0
