"""§II-B / Fig. 3 — the superblock failure modes the paper motivates with.

Two pathologies measured over the whole suite: *infeasible* superblocks
(edge-profile-grown sequences that never execute) and superblocks that are
not the hottest path.  The anti-correlated-diamond kernel demonstrates the
Fig. 3 construction explicitly.
"""

from repro.regions import diagnose_superblock
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        diag = diagnose_superblock(
            a.profiled.function,
            a.profiled.edges,
            a.profiled.paths,
            a.ranked,
        )
        rows.append(
            (
                a.name,
                "yes" if diag.feasible else "NO",
                "yes" if diag.matches_hottest_path else "NO",
                len(diag.superblock_blocks),
            )
        )
    return rows


def test_superblock_pathologies(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "feasible?", "is hottest path?", "SB blocks"],
        rows,
        title="Superblock pathologies (paper Fig. 3 / §II-B)",
    )
    infeasible = [r[0] for r in rows if r[1] == "NO"]
    not_hottest = [r[0] for r in rows if r[2] == "NO"]
    summary = "infeasible: %s\nnot-hottest-path: %s" % (
        ", ".join(infeasible) or "(none)",
        ", ".join(not_hottest) or "(none)",
    )
    save_result("superblock_pathology", text + "\n\n" + summary)

    # the paper found 6 workloads where the superblock is not the hottest
    # path; path-diffuse suites reproduce the effect
    assert len(not_hottest) >= 2


def test_fig3_anticorrelated_superblock_is_infeasible():
    """The explicit Fig. 3 reproduction over the anti-correlated kernel."""
    from repro.profiling import rank_paths
    from tests.conftest import build_anticorrelated, profile_function

    m, fn = build_anticorrelated()
    pp, ep = profile_function(m, fn, [[40]])
    diag = diagnose_superblock(fn, ep, pp, rank_paths(pp))
    assert not diag.feasible
    assert not diag.matches_hottest_path
