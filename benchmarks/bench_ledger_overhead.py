"""Overhead budget for attribution-ledger publication.

The ledger rides on instrumented runs: when obs is enabled, every
workload evaluation publishes its per-outcome attribution dicts into the
registry's :class:`~repro.obs.ledger.AttributionLedger`.  That must stay
nearly free — the attribution dicts are computed by the simulator either
way (they define the reported totals), so publication is only dict
iteration and ledger accumulation.

Times cold serial evaluation of the full suite twice in one process,
both with obs *enabled*:

* **ledger off** — ``set_ledger_publication(False)``: instrumented run,
  metrics and spans collected, ledger publication skipped;
* **ledger on** — the instrumented default.

Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_ledger_overhead.py

The on/off ratio is measured same-process, same-machine, so it is stable
enough to gate on: the run fails if ledger publication costs more than
``--budget`` (default 5%).

No ``test_`` functions here on purpose: wall-clock gating does not
belong in the pytest suite.
"""

import argparse
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def time_suite(ledger_on: bool, repeats: int) -> float:
    """Best-of-``repeats`` cold serial instrumented suite evaluation."""
    from repro import NeedlePipeline, obs, suite
    from repro.obs.instruments import set_ledger_publication
    from repro.workloads.base import clear_profile_cache

    workloads = suite()
    best = float("inf")
    previous = set_ledger_publication(ledger_on)
    try:
        for _ in range(repeats):
            clear_profile_cache()
            obs.enable(reset=True)
            pipeline = NeedlePipeline()  # no artifact cache: cold runs
            t0 = time.perf_counter()
            pipeline.evaluate_all(workloads)
            best = min(best, time.perf_counter() - t0)
    finally:
        set_ledger_publication(previous)
        obs.disable()
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per mode; best is kept (default 2)",
    )
    parser.add_argument(
        "--budget", type=float, default=0.05,
        help="allowed ledger-on overhead vs ledger-off (default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    off = time_suite(ledger_on=False, repeats=args.repeats)
    on = time_suite(ledger_on=True, repeats=args.repeats)
    overhead = on / off - 1.0

    lines = [
        "attribution-ledger overhead over the cold instrumented suite "
        "(best of %d runs)" % args.repeats,
        "",
        "ledger off : %7.2f s" % off,
        "ledger on  : %7.2f s  (%+.1f%% vs off; budget %.0f%%)"
        % (on, overhead * 100, args.budget * 100),
    ]
    failed = overhead > args.budget
    lines.append("")
    lines.append(
        "FAIL: ledger publication overhead %.1f%% exceeds the %.0f%% budget"
        % (overhead * 100, args.budget * 100)
        if failed else "within budget"
    )
    report = "\n".join(lines)
    print(report)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "ledger_overhead.txt"), "w") as fh:
        fh.write(report + "\n")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
