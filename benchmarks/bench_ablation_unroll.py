"""Ablation — loop unrolling before path profiling (§VI's 4x unrolling).

Unrolling enlarges the acyclic offload unit (a BL path now spans several
iterations) at the cost of a larger fabric mapping — the same trade the
paper's blackscholes discussion attributes its predictor pathology to.
"""

from repro.frames import build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.profiling import PathProfiler, rank_paths
from repro.regions import path_to_region
from repro.reporting import format_table
from repro.sim import OffloadSimulator
from repro.transforms import unroll_hottest_loop
from repro.workloads import get

from .conftest import save_result

TARGETS = ["482.sphinx3", "dwt53", "450.soplex"]
FACTORS = [1, 2, 4]


def _profile(module, fn, args):
    pp = PathProfiler([fn])
    rec = TraceRecorder([fn])
    Interpreter(module, tracer=MultiTracer(pp, rec)).run(fn, args)
    return pp.profile_for(fn), rec.traces[fn]


def _compute():
    sim = OffloadSimulator()
    rows = []
    for name in TARGETS:
        for factor in FACTORS:
            module, fn, args = get(name).build()
            if factor > 1:
                unroll_hottest_loop(fn, factor)
            profile, trace = _profile(module, fn, args)
            ranked = rank_paths(profile)
            frame = build_frame(path_to_region(fn, ranked[0]))
            outcome = sim.simulate_offload(
                name, profile, frame, "oracle", trace
            )
            rows.append(
                (
                    name,
                    factor,
                    ranked[0].ops,
                    frame.guard_count,
                    outcome.performance_improvement * 100,
                )
            )
    return rows


def test_ablation_unroll_factor(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    text = format_table(
        ["workload", "unroll", "path ops", "guards", "path-oracle %"],
        rows,
        title="Ablation: unrolling before path formation",
    )
    save_result("ablation_unroll", text)

    # unrolling monotonically enlarges the hot path
    for name in TARGETS:
        series = [r for r in rows if r[0] == name]
        ops = [r[2] for r in series]
        assert ops == sorted(ops), name
        # a 4x unroll should be roughly 4x the base path
        assert ops[-1] > 3 * ops[0], name
