"""Fig. 6 — path coverage: stacked Pwt of the top five ranked paths.

The paper's headline profiling result: the top path covers 25% of dynamic
instructions on average, and the median top-5 coverage is 86%.
"""

import statistics

from repro.profiling import top_k_coverage
from repro.reporting import format_table, stacked_bar_chart

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        cov = top_k_coverage(a.profiled.paths, 5)
        cov += [0.0] * (5 - len(cov))
        rows.append((a.name, cov))
    return rows


def test_fig6_path_coverage(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    chart = stacked_bar_chart(
        rows, title="Fig. 6: coverage (Pwt) of the top-5 BL paths"
    )
    table = format_table(
        ["workload", "p1%", "p2%", "p3%", "p4%", "p5%", "sum%"],
        [
            (name, *[c * 100 for c in cov], sum(cov) * 100)
            for name, cov in rows
        ],
        title="Fig. 6 (data)",
    )
    save_result("fig6", chart + "\n\n" + table)

    top1 = [cov[0] for _, cov in rows]
    top5 = [sum(cov) for _, cov in rows]
    # top path averages ~25% coverage in the paper; ours should be broadly
    # similar (it is the knob the suite was shaped with)
    assert 0.15 < statistics.mean(top1) < 0.6
    # a majority of workloads clear 20% with the single hottest path
    assert sum(1 for t in top1 if t >= 0.2) >= 15
    # median top-5 coverage is high (paper: 86%)
    assert statistics.median(top5) > 0.6
    # stacks are sorted: rank-k coverage never increases with k
    for _, cov in rows:
        assert all(cov[i] >= cov[i + 1] - 1e-12 for i in range(4))
