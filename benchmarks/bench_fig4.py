"""Fig. 4 — distribution of branch biases in the hot function.

The paper's point: in 15 of 29 workloads individual branch biases vary a
lot, with up to 24% of branches below 80% bias — which is why a single
heuristic threshold cannot drive good region formation.
"""

from repro.reporting import format_table, histogram

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        ep = a.profiled.edges
        unbiased = ep.fraction_unbiased(0.8)
        dist = ep.bias_distribution()
        rows.append((a.name, unbiased, dist))
    return rows


def test_fig4_branch_bias_distribution(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    table = format_table(
        ["workload", "% branches < 80% bias"],
        [(name, unbiased * 100) for name, unbiased, _ in rows],
        title="Fig. 4: fraction of unbiased branches (bias < 80%)",
    )
    chart = histogram(
        [(name, unbiased) for name, unbiased, _ in rows],
        title="Fig. 4 (chart)",
    )
    save_result("fig4", table + "\n\n" + chart)

    unbiased_fracs = [u for _, u, _ in rows]
    # several workloads have a meaningful unbiased-branch population...
    assert sum(1 for u in unbiased_fracs if u > 0.1) >= 5
    # ...and several are almost fully biased (paper: "applications not shown
    # have 99% of branches with > 80% bias")
    assert sum(1 for u in unbiased_fracs if u < 0.05) >= 5
    # every per-workload distribution is a proper distribution
    for _, _, dist in rows:
        if dist:
            assert abs(sum(dist.values()) - 1.0) < 1e-9
