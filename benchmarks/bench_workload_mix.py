"""Suite characterisation: dynamic instruction mix of the 29 workloads.

Validates that the synthetic suite carries the operational character the
paper's suites have — FP-dominated scientific kernels, integer search/
compress codes, memory-heavy DP — which everything downstream (energy
split, HLS area, FPU contention) depends on.
"""

from repro.interp import Interpreter, OpMixTracer
from repro.reporting import format_table

from .conftest import save_result


def _compute(suite):
    rows = []
    for w in suite:
        module, fn, args = w.build()
        tracer = OpMixTracer([fn])
        Interpreter(module, tracer=tracer).run(fn, args)
        mix = tracer.mix_for(fn)
        rows.append(
            (
                w.name,
                w.flavor,
                mix.int_share * 100,
                mix.fp_share * 100,
                mix.memory_share * 100,
                mix.control_share * 100,
                mix.total,
            )
        )
    return rows


def test_workload_instruction_mix(benchmark, suite):
    rows = benchmark.pedantic(_compute, args=(suite,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "flavor", "int %", "fp %", "mem %", "ctl %", "dyn ops"],
        rows,
        title="Suite characterisation: dynamic instruction mix",
    )
    save_result("workload_mix", text)

    by_name = {r[0]: r for r in rows}
    # declared flavor matches the measured mix
    for name, flavor, int_s, fp_s, mem_s, ctl_s, total in rows:
        if flavor == "fp":
            assert fp_s > 15, name
        else:
            assert fp_s < 10, name
        assert total > 500, name
        assert abs(int_s + fp_s + mem_s + ctl_s - 100) < 1e-6
    # the canonical extremes
    assert by_name["470.lbm"][3] > 40  # fp share
    assert by_name["456.hmmer"][4] > by_name["blackscholes"][4]  # mem share
