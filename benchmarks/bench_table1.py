"""Table I — control flow characteristics of the hot functions.

Reproduces the four statistics: Branch=>Mem (memory ops control-dependent
on a branch), Mem=>Branch (memory ops feeding a branch condition),
predication bits for full if-conversion, and backward-branch counts,
plus the hyperblock-vs-basic-block size ratio discussed in §II.
"""

from repro.analysis import (
    LoopInfo,
    branch_memory_stats,
    hyperblock_size_stats,
    predication_stats,
)
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        fn = a.profiled.function
        bm = branch_memory_stats(fn)
        pred = predication_stats(fn)
        loops = LoopInfo.compute(fn)
        hb = hyperblock_size_stats(fn)
        rows.append(
            (
                a.name,
                round(bm.avg_mem_dependent_on_branch, 1),
                round(bm.avg_mem_branch_depends_on, 1),
                pred.forward_branches,
                loops.backward_branch_count,
                round(hb.expansion_ratio, 1),
            )
        )
    return rows


def test_table1_control_flow_characteristics(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "Branch=>Mem", "Mem=>Branch", "pred.bits", "back-br", "HB/BB"],
        rows,
        title="Table I: control flow characteristics (hot function)",
    )
    save_result("table1", text)
    # sanity: branch-dependent memory exists somewhere, every fn has a loop
    assert any(r[1] > 0 for r in rows)
    assert all(r[4] >= 1 for r in rows)
    # hyperblocks enlarge blocks but modestly (paper: ~2.2x typical)
    ratios = [r[5] for r in rows]
    assert sum(ratios) / len(ratios) > 1.5
