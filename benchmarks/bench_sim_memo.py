"""Simulation-time benchmark: run-length trace kernels + simulation memo.

Measures, with real wall clocks and the artifact cache disabled, what the
two new perf layers buy:

* **per-workload** — the three-strategy simulation bill (path-oracle,
  path-history, braid) under the reference configuration
  (``trace_kernels="events"``, memo off) vs the shipped one
  (``trace_kernels="rle"``, memo on), best of ``_REPEATS`` cold runs
  each, with the outcomes checked identical;
* **per-stage** — cold one-shot times for the memoizable sub-simulations
  (memory calibration, host path costs) summed over the suite: these are
  what the memo lets the three strategies pay once instead of thrice;
* **suite-level** — cold full-suite wall clock in the shipped
  configuration, plus a warm artifact-cache pass whose speedup is gated
  against the floor recorded in the committed ``BENCH_sim.json``
  (same-ratio comparisons are machine-stable, unlike absolute seconds —
  the pattern of ``bench_obs_overhead.py``).

Everything lands machine-readable in ``BENCH_sim.json`` at the repo root
(section ``"sim_memo"``) next to the ``pipeline_scaling`` section, and
human-readable in ``benchmarks/results/sim_memo.txt``.
"""

import os
import time

from repro.options import PipelineOptions
from repro.sim import KERNELS_EVENTS, KERNELS_RLE, OffloadSimulator
from repro.workloads.base import clear_profile_cache

from .conftest import load_bench_json, save_result, update_bench_json

#: cold repeats per (workload, mode); best is kept to shed scheduler noise
_REPEATS = 3

#: the acceptance bar: the shipped configuration must at least halve the
#: three-strategy simulation time on at least this fraction of the suite
_SPEEDUP_BAR = 2.0
_SUITE_FRACTION = 0.5

#: warm-cache suite speedup floor used when BENCH_sim.json has none yet
_DEFAULT_WARM_FLOOR = 3.0


def _three_strategies(sim, analysis):
    """The exact simulation calls one pipeline evaluation makes."""
    profiled = analysis.profiled
    out = []
    if analysis.path_frame is not None:
        out.append(sim.simulate_offload(
            profiled.workload.name, profiled.paths, analysis.path_frame,
            "oracle", profiled.trace,
        ))
        out.append(sim.simulate_offload(
            profiled.workload.name, profiled.paths, analysis.path_frame,
            "history", profiled.trace,
        ))
    if analysis.braid_frame is not None:
        out.append(sim.simulate_offload(
            profiled.workload.name, profiled.paths, analysis.braid_frame,
            "oracle", profiled.trace, coverage=analysis.top_braid.coverage,
        ))
    return out


def _best_of(make_sim, analysis):
    best, outcomes = float("inf"), None
    for _ in range(_REPEATS):
        sim = make_sim()  # fresh simulator: every repeat is a cold run
        t0 = time.perf_counter()
        outcomes = _three_strategies(sim, analysis)
        best = min(best, time.perf_counter() - t0)
    return best, outcomes


def test_sim_memo_speedup(suite):
    # analysis (profiling, framing) is shared and untimed: the claim under
    # test is about *simulation* time, which is where the memo and the
    # kernels live
    pipe = PipelineOptions(no_cache=True).build_pipeline()
    analyses = {w.name: pipe.analyse(w) for w in suite}

    per_workload = []
    for w in suite:
        analysis = analyses[w.name]
        ref_t, ref_out = _best_of(
            lambda: OffloadSimulator(memo=False, trace_kernels=KERNELS_EVENTS),
            analysis,
        )
        fast_t, fast_out = _best_of(
            lambda: OffloadSimulator(trace_kernels=KERNELS_RLE), analysis,
        )
        # a wrong-but-fast simulator is worthless
        assert [vars(a) for a in fast_out] == [vars(b) for b in ref_out]
        per_workload.append({
            "workload": w.name,
            "reference_seconds": ref_t,
            "fast_seconds": fast_t,
            "speedup": ref_t / fast_t,
        })

    # per-stage breakdown: what one cold pass over the suite spends in the
    # memoizable sub-simulations (paid 3x without the memo, 1x with it)
    stage = {"calibrate_seconds": 0.0, "path_costs_seconds": 0.0}
    for w in suite:
        profiled = analyses[w.name].profiled
        sim = OffloadSimulator(memo=False)
        t0 = time.perf_counter()
        cal = sim.calibrate(profiled.trace)
        stage["calibrate_seconds"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        sim.path_costs(profiled.paths, cal.host_load_latency)
        stage["path_costs_seconds"] += time.perf_counter() - t0

    # suite-level wall clocks: cold (no artifact cache), then cold + warm
    # against a scratch cache for the gated warm-path speedup
    clear_profile_cache()
    t0 = time.perf_counter()
    PipelineOptions(no_cache=True).build_pipeline().evaluate_all(suite)
    cold_suite = time.perf_counter() - t0

    import tempfile

    with tempfile.TemporaryDirectory() as cache_dir:
        clear_profile_cache()
        opts = dict(cache_dir=os.path.join(cache_dir, "cache"))
        PipelineOptions(**opts).build_pipeline().evaluate_all(suite)
        clear_profile_cache()
        t0 = time.perf_counter()
        PipelineOptions(**opts).build_pipeline().evaluate_all(suite)
        warm_suite = time.perf_counter() - t0
    warm_speedup = cold_suite / warm_suite

    n_fast = sum(row["speedup"] >= _SPEEDUP_BAR for row in per_workload)
    recorded = load_bench_json().get("sim_memo", {})
    warm_floor = recorded.get("warm_speedup_floor", _DEFAULT_WARM_FLOOR)

    update_bench_json("sim_memo", {
        "suite_size": len(suite),
        "repeats": _REPEATS,
        "per_workload": per_workload,
        "per_stage_cold": stage,
        "workloads_at_least_%gx" % _SPEEDUP_BAR: n_fast,
        "cold_suite_seconds": cold_suite,
        "warm_suite_seconds": warm_suite,
        "warm_speedup": warm_speedup,
        "warm_speedup_floor": warm_floor,
    })

    lines = [
        "three-strategy simulation time, reference (events, no memo) vs "
        "shipped (rle + memo); best of %d cold runs" % _REPEATS,
        "",
    ]
    for row in sorted(per_workload, key=lambda r: -r["speedup"]):
        lines.append("%-22s ref %7.2f ms   fast %7.2f ms   %5.2fx" % (
            row["workload"], row["reference_seconds"] * 1e3,
            row["fast_seconds"] * 1e3, row["speedup"],
        ))
    lines += [
        "",
        ">= %.0fx on %d/%d workloads (gate: at least %d)"
        % (_SPEEDUP_BAR, n_fast, len(suite),
           int(len(suite) * _SUITE_FRACTION + 0.5)),
        "memoizable stages, cold, suite total: calibrate %.2f s, "
        "path costs %.2f s" % (
            stage["calibrate_seconds"], stage["path_costs_seconds"]),
        "cold suite %.2f s; warm artifact cache %.2f s (%.1fx, floor %.1fx)"
        % (cold_suite, warm_suite, warm_speedup, warm_floor),
    ]
    save_result("sim_memo", "\n".join(lines))

    assert n_fast >= len(suite) * _SUITE_FRACTION
    assert warm_speedup >= warm_floor
