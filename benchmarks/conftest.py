"""Shared benchmark fixtures.

One :class:`~repro.pipeline.NeedlePipeline` is shared across every
benchmark in the session, so profiling/analysis happens once per workload
regardless of how many tables and figures consume it.  Rendered outputs are
both printed (visible with ``pytest -s``) and written under
``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import os

import pytest

from repro import NeedlePipeline, workloads

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def pipeline():
    return NeedlePipeline()


@pytest.fixture(scope="session")
def suite():
    return workloads.all_workloads()


@pytest.fixture(scope="session")
def analyses(pipeline, suite):
    return pipeline.analyse_all(suite)


@pytest.fixture(scope="session")
def evaluations(pipeline, suite):
    return pipeline.evaluate_all(suite)


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path
