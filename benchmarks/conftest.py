"""Shared benchmark fixtures.

One :class:`~repro.pipeline.NeedlePipeline` is shared across every
benchmark in the session, so profiling/analysis happens once per workload
regardless of how many tables and figures consume it.  The pipeline is
backed by the persistent artifact cache (``$REPRO_CACHE_DIR`` or
``~/.cache/repro-needle``), so a *second* benchmark session skips
re-profiling entirely; set ``REPRO_NO_CACHE=1`` to force cold runs.
Rendered outputs are both printed (visible with ``pytest -s``) and written
under ``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import os

import pytest

from repro import ArtifactCache, NeedlePipeline, workloads

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def pipeline():
    cache = None if os.environ.get("REPRO_NO_CACHE") else ArtifactCache()
    return NeedlePipeline(cache=cache)


@pytest.fixture(scope="session")
def suite():
    return workloads.all_workloads()


@pytest.fixture(scope="session")
def analyses(pipeline, suite):
    return pipeline.analyse_all(suite)


@pytest.fixture(scope="session")
def evaluations(pipeline, suite):
    return pipeline.evaluate_all(suite)


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path
