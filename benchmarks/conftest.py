"""Shared benchmark fixtures.

One :class:`~repro.pipeline.NeedlePipeline` is shared across every
benchmark in the session, so profiling/analysis happens once per workload
regardless of how many tables and figures consume it.  The pipeline is
built through :class:`~repro.options.PipelineOptions` — exactly the path
the CLI and ``evaluate_suite`` take — so the simulation memo and the
fail-safe retry plumbing are wired the same way here as in production
runs.  It is backed by the persistent artifact cache
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro-needle``), so a *second*
benchmark session skips re-profiling entirely; set ``REPRO_NO_CACHE=1``
to force cold runs.  Rendered outputs are both printed (visible with
``pytest -s``) and written under ``benchmarks/results/`` for inspection;
machine-readable performance numbers accumulate in ``BENCH_sim.json`` at
the repo root via :func:`update_bench_json`.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import workloads
from repro.options import PipelineOptions

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_JSON = os.path.join(REPO_ROOT, "BENCH_sim.json")


@pytest.fixture(scope="session")
def pipeline():
    no_cache = bool(os.environ.get("REPRO_NO_CACHE"))
    return PipelineOptions(no_cache=no_cache).build_pipeline()


@pytest.fixture(scope="session")
def suite():
    return workloads.all_workloads()


@pytest.fixture(scope="session")
def analyses(pipeline, suite):
    return pipeline.analyse_all(suite)


@pytest.fixture(scope="session")
def evaluations(pipeline, suite):
    return pipeline.evaluate_all(suite)


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print()
    print(text)
    return path


def load_bench_json() -> dict:
    """The committed machine-readable benchmark record (empty if absent)."""
    try:
        with open(BENCH_JSON) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return {}


def update_bench_json(section: str, data: dict) -> str:
    """Merge one benchmark's numbers into ``BENCH_sim.json`` at the repo
    root — each benchmark owns a top-level section, so partial reruns
    never clobber the others."""
    record = load_bench_json()
    record[section] = data
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return BENCH_JSON
