"""Backend plug-n-play: Aladdin-style design space exploration (Fig. 1,
Step 3 "Accelerator Design Analysis").

The paper emphasises that Needle's frames feed existing accelerator-design
backends (Aladdin, TDGF, CGRA compilers).  Here the same braid frame is
swept through the Aladdin-style pre-RTL estimator; the latency/power Pareto
frontier is what an architect would use to size a fixed-function unit.
"""

from repro.accel import AladdinEstimator
from repro.reporting import format_table

from .conftest import save_result

TARGETS = ["470.lbm", "456.hmmer", "482.sphinx3"]


def _compute(analyses):
    by_name = {a.name: a for a in analyses}
    est = AladdinEstimator()
    rows = []
    for name in TARGETS:
        frame = by_name[name].braid_frame
        frontier = est.pareto(est.sweep(frame))
        for r in frontier:
            rows.append(
                (
                    name,
                    r.config.int_alus,
                    r.config.fp_alus,
                    r.config.mem_ports,
                    r.latency_cycles,
                    round(r.power_mw, 2),
                    round(r.area_mm2, 3),
                )
            )
    return rows


def test_backend_design_space_exploration(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "ALUs", "FPUs", "mem", "latency cyc", "power mW", "area mm2"],
        rows,
        title="Aladdin-backend Pareto frontier per braid frame",
    )
    save_result("backend_dse", text)

    # every target produced a non-trivial frontier
    for name in TARGETS:
        points = [r for r in rows if r[0] == name]
        assert len(points) >= 2, name
        lats = [p[4] for p in points]
        pows = [p[5] for p in points]
        assert lats == sorted(lats)
        assert pows == sorted(pows, reverse=True)
