"""Region-formation baseline comparison: Superblock vs BL-path vs Braid.

The paper's core argument (§II/§III) is that edge-profile-driven region
formation leaves coverage on the table relative to path-precise formation.
We offload each strategy's best region with the Oracle predictor and compare
whole-workload outcomes: the superblock targets exactly the executed paths
that contain its block sequence, so infeasible or mis-ranked superblocks
show up as missing coverage.
"""

import statistics

from repro.frames import build_frame
from repro.regions import build_superblock
from repro.reporting import format_table
from repro.sim import OffloadSimulator

from .conftest import save_result


def _superblock_targets(sb, profile):
    """Executed paths that contain the superblock sequence contiguously."""
    want = [b.name for b in sb.blocks]
    n = len(want)
    targets = set()
    for pid in profile.counts:
        names = [b.name for b in profile.decode(pid)]
        if any(names[i : i + n] == want for i in range(len(names) - n + 1)):
            targets.add(pid)
    return targets


def _compute(analyses, evaluations):
    sim = OffloadSimulator()
    by_name = {e.name: e for e in evaluations}
    rows = []
    for a in analyses:
        profile = a.profiled.paths
        sb = build_superblock(a.profiled.function, a.profiled.edges)
        targets = _superblock_targets(sb, profile)
        sb_improvement = None
        if targets and len(sb.blocks) >= 2:
            sb.source_paths = sorted(targets)
            sb.frequency = sum(profile.counts[t] for t in targets)
            sb.coverage = sum(
                profile.counts[t] for t in targets
            ) / max(1, profile.total_executions)
            try:
                sb_frame = build_frame(sb)
                outcome = sim.simulate_offload(
                    a.name, profile, sb_frame, "oracle", a.profiled.trace,
                    coverage=sb.coverage,
                )
                sb_improvement = outcome.performance_improvement
            except Exception:
                sb_improvement = None
        ev = by_name[a.name]
        rows.append(
            (
                a.name,
                (sb_improvement if sb_improvement is not None else 0.0) * 100,
                "yes" if targets else "NO",
                ev.path_oracle.performance_improvement * 100,
                ev.braid.performance_improvement * 100,
            )
        )
    return rows


def test_baseline_superblock_vs_needle(benchmark, analyses, evaluations):
    rows = benchmark.pedantic(
        _compute, args=(analyses, evaluations), rounds=1, iterations=1
    )
    text = format_table(
        ["workload", "superblock %", "feasible?", "BL-path %", "braid %"],
        rows,
        title="Baseline comparison: superblock vs path vs braid offload",
    )
    mean_sb = statistics.mean(r[1] for r in rows)
    mean_path = statistics.mean(r[3] for r in rows)
    mean_braid = statistics.mean(r[4] for r in rows)
    summary = "means: superblock %.1f%%, BL-path %.1f%%, braid %.1f%%" % (
        mean_sb, mean_path, mean_braid
    )
    save_result("baseline_comparison", text + "\n\n" + summary)

    # the paper's ordering: braids beat paths beat edge-profile superblocks
    assert mean_braid > mean_path > mean_sb
