"""§III-A — frequency-based vs sampling-based path weights.

The paper profiled the hottest path with pprof-style sampling and found the
sampling estimate differs from the Pwt/Fwt frequency metric (+10% in 12
workloads, -15% in 6, unchanged in 4) — evidence for using the deterministic
frequency metric.
"""

from repro.profiling import compare_frequency_vs_sampling
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        cmp_ = compare_frequency_vs_sampling(a.profiled.paths)
        rows.append(
            (
                a.name,
                cmp_.frequency_weight * 100,
                cmp_.sampling_weight * 100,
                cmp_.relative_change * 100,
            )
        )
    return rows


def test_sampling_vs_frequency(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "freq weight %", "sampling weight %", "rel.change %"],
        rows,
        title="Sampling vs frequency path weight (paper SIII-A)",
    )
    higher = sum(1 for r in rows if r[3] > 2)
    lower = sum(1 for r in rows if r[3] < -2)
    flat = len(rows) - higher - lower
    summary = "sampling higher: %d, lower: %d, unchanged: %d (paper: 12/6/4-ish)" % (
        higher, lower, flat
    )
    save_result("sampling", text + "\n\n" + summary)

    # the two metrics must disagree for at least some workloads — the
    # paper's reason for preferring the deterministic frequency weight
    assert higher + lower >= 5
    # but never absurdly (both measure the same top path)
    assert all(abs(r[3]) < 100 for r in rows)
