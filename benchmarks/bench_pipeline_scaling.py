"""Pipeline throughput: cold vs warm-cache vs parallel suite evaluation.

Times three ways of evaluating the full 29-workload suite with real wall
clocks and records them to ``benchmarks/results/pipeline_scaling.txt``
(and, machine-readable, to the ``pipeline_scaling`` section of
``BENCH_sim.json`` at the repo root):

* **cold serial** — fresh pipeline, empty artifact cache: every workload is
  profiled, framed, scheduled and simulated from scratch;
* **warm cache** — a second fresh pipeline against the now-populated cache:
  the suite should come back in well under 2 s because each evaluation is a
  hash plus a pickle load;
* **parallel cold** — fresh pipeline and empty cache again, sharded over
  the :mod:`repro.exec` process pool via ``PipelineOptions(jobs=N)``.
  The pool keeps its workers *warm*: forked once, batch-fed, pipeline
  state reused across tasks — the redesign that fixed the old sub-1x
  ``--jobs 2`` regression (per-task executor churn);
* **journaled cold** — the cold-serial sweep again with the crash-safe
  run journal attached (``PipelineOptions(journal_dir=...)``): every
  completed workload is fsynced to the write-ahead journal as it lands.
  The journal's own fsync cost is read back from its ``run_finished``
  record and the healthy-path overhead is *asserted* within 3% of the
  no-journal baseline (plus a small absolute grace for fsync jitter).

The parallel wall clock is further decomposed so any residual sub-1x
``parallel_speedup`` is diagnosable instead of mysterious:

* **spawn/import overhead** — wall time to bring up a pool of ``N``
  workers and round-trip one trivial probe task through each.  This is
  everything the suite pays *before* any workload computes: process
  creation, worker bootstrap, and (without ``fork``) re-importing the
  package — under ``fork`` the imports are inherited and the number is
  mostly process creation + IPC round-trip.
* **steady state** — the parallel wall clock minus the measured spawn
  overhead: the throughput the pool delivers once workers exist.

On a machine with >= 2 effective cores the end-to-end parallel speedup
is *asserted* >= 1.5x at jobs=2 — the acceptance floor of the pool
redesign.  On a single-core container the pool cannot win by physics
(Amdahl with one lane); the numbers are recorded honestly and the floor
is not asserted, with ``effective_cores`` in the JSON telling the reader
which regime produced them.

The parallel and warm paths are also checked bitwise-identical to the cold
serial rows — a wrong-but-fast pipeline is worthless.
"""

import json
import os
import shutil
import time

from repro import ArtifactCache, NeedlePipeline, PipelineOptions
from repro.cli import evaluation_row
from repro.exec.pools import ProcessPool
from repro.resilience.runner import run_failsafe
from repro.workloads.base import clear_profile_cache

from .conftest import save_result, update_bench_json

#: at least 2 so the pool path genuinely runs even on a single-core
#: container (where it measures pure pool overhead)
_JOBS = max(2, min(4, os.cpu_count() or 1))

#: the acceptance floor for the pool redesign, enforced where the
#: hardware can physically deliver it
_SPEEDUP_FLOOR = 1.5

#: healthy-path journal overhead ceiling: relative share of the cold
#: serial wall clock, plus an absolute grace for per-record fsync
#: jitter on slow or shared disks
_JOURNAL_OVERHEAD_RATIO = 0.03
_JOURNAL_OVERHEAD_GRACE = 0.2


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _rows(evaluations):
    return [evaluation_row(ev.name, ev) for ev in evaluations]


def _probe_worker(i):
    """Trivial pool task: prove the worker is up and the package loaded."""
    import repro.pipeline  # noqa: F401  (cost is the point being measured)

    return os.getpid()


def _pid_task(item, plan, attempt):
    """Picklable fail-safe task: report which process ran it."""
    return os.getpid()


def _measure_spawn_import(jobs: int):
    """(seconds, distinct worker pids) to spawn a pool and round-trip one
    probe task per worker — the fixed cost every parallel sweep pays
    before its first workload starts computing."""
    t0 = time.perf_counter()
    pool = ProcessPool(jobs=jobs)
    pool.start()
    try:
        for i in range(jobs):
            pool.submit(_probe_worker, (i,), key=str(i))
        pids, done = set(), 0
        while done < jobs:
            for c in pool.wait(10.0):
                assert c.ok, c.error
                pids.add(c.result)
                done += 1
    finally:
        pool.close(graceful=True)
    return time.perf_counter() - t0, len(pids)


def test_pool_workers_stay_warm():
    """3x as many tasks as workers never touch more than ``jobs`` pids —
    the warm-worker property the scaling numbers depend on."""
    pids = set(run_failsafe(_pid_task, list(range(3 * _JOBS)),
                            jobs=_JOBS, pool="process"))
    assert len(pids) <= _JOBS
    assert os.getpid() not in pids


def test_pipeline_scaling(tmp_path_factory, suite):
    cache_dir = str(tmp_path_factory.mktemp("scaling-cache"))

    # each timed run starts with an empty in-memory profile cache so only
    # the on-disk artifact cache (or lack of it) separates the three modes
    clear_profile_cache()
    t0 = time.perf_counter()
    cold_evs = NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate_all(suite)
    cold = time.perf_counter() - t0

    clear_profile_cache()
    t0 = time.perf_counter()
    warm_evs = NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate_all(suite)
    warm = time.perf_counter() - t0

    shutil.rmtree(cache_dir)
    clear_profile_cache()
    t0 = time.perf_counter()
    par_evs = NeedlePipeline(
        cache=ArtifactCache(cache_dir),
        options=PipelineOptions(jobs=_JOBS, pool="process"),
    ).evaluate_all(suite)
    parallel = time.perf_counter() - t0

    # journaled cold serial: same work as the cold leg, plus the
    # write-ahead journal fsyncing each completed workload as it lands
    jcache_dir = str(tmp_path_factory.mktemp("scaling-cache-journal"))
    journal_dir = str(tmp_path_factory.mktemp("scaling-journal"))
    clear_profile_cache()
    t0 = time.perf_counter()
    journal_evs = NeedlePipeline(
        cache=ArtifactCache(jcache_dir),
        options=PipelineOptions(journal_dir=journal_dir, run_id="bench"),
    ).evaluate_all(suite)
    journaled = time.perf_counter() - t0

    # the journal's terminal record carries its own fsync cost, so the
    # overhead is decomposed explicitly rather than inferred
    with open(os.path.join(journal_dir, "bench.jsonl")) as fh:
        journal_events = [json.loads(line) for line in fh]
    run_finished = journal_events[-1]
    assert run_finished["event"] == "run_finished"
    assert run_finished["completed"] == len(suite)
    journal_fsync = run_finished["fsync_seconds"]
    journal_records = run_finished["records"]

    spawn, workers_seen = _measure_spawn_import(_JOBS)
    steady = max(parallel - spawn, 1e-9)
    cores = _effective_cores()

    assert _rows(warm_evs) == _rows(cold_evs)
    assert _rows(par_evs) == _rows(cold_evs)
    assert _rows(journal_evs) == _rows(cold_evs)

    lines = [
        "pipeline scaling over the %d-workload suite (%d effective cores)"
        % (len(suite), cores),
        "",
        "cold serial      : %7.2f s" % cold,
        "warm cache       : %7.2f s  (%.0fx faster)" % (warm, cold / warm),
        "parallel jobs=%-2d : %7.2f s  (%.2fx vs cold serial, process pool)"
        % (_JOBS, parallel, cold / parallel),
        "journaled cold   : %7.2f s  (%+.1f%% vs cold serial; %d records, "
        "%.3f s in journal fsyncs)"
        % (journaled, 100.0 * (journaled - cold) / cold, journal_records,
           journal_fsync),
        "",
        "parallel decomposition:",
        "  spawn+import   : %7.2f s  (%d workers probed, %.0f%% of parallel"
        " wall)" % (spawn, workers_seen, 100.0 * spawn / parallel),
        "  steady state   : %7.2f s  (%.2fx vs cold serial)"
        % (steady, cold / steady),
        "",
        "warm/parallel rows verified bitwise-identical to cold serial",
    ]
    save_result("pipeline_scaling", "\n".join(lines))
    update_bench_json("pipeline_scaling", {
        "suite_size": len(suite),
        "jobs": _JOBS,
        "pool_backend": "process",
        "effective_cores": cores,
        "cold_serial_seconds": cold,
        "warm_cache_seconds": warm,
        "parallel_seconds": parallel,
        "warm_speedup": cold / warm,
        "parallel_speedup": cold / parallel,
        "spawn_import_seconds": spawn,
        "steady_state_seconds": steady,
        "steady_state_speedup": cold / steady,
        "journaled_cold_seconds": journaled,
        "journal_overhead_ratio": journaled / cold,
        "journal_fsync_seconds": journal_fsync,
        "journal_records": journal_records,
    })

    assert warm < cold
    assert warm < 2.0
    # healthy-path journal overhead stays within the acceptance ceiling
    assert journaled <= cold * (1.0 + _JOURNAL_OVERHEAD_RATIO) \
        + _JOURNAL_OVERHEAD_GRACE, (
        "journaled sweep %.2fs exceeds cold serial %.2fs by more than "
        "%.0f%% + %.1fs (journal fsyncs: %.3fs over %d records)"
        % (journaled, cold, 100 * _JOURNAL_OVERHEAD_RATIO,
           _JOURNAL_OVERHEAD_GRACE, journal_fsync, journal_records))
    # every worker must actually have come up for the probe to mean anything
    assert workers_seen >= 1
    if cores >= 2:
        # the acceptance floor of the pool redesign: with real cores the
        # warm process pool must beat serial by 1.5x end to end
        assert cold / parallel >= _SPEEDUP_FLOOR, (
            "parallel_speedup %.2fx below the %.1fx floor on %d cores"
            % (cold / parallel, _SPEEDUP_FLOOR, cores))
