"""Pipeline throughput: cold vs warm-cache vs parallel suite evaluation.

Times three ways of evaluating the full 29-workload suite with real wall
clocks and records them to ``benchmarks/results/pipeline_scaling.txt``
(and, machine-readable, to the ``pipeline_scaling`` section of
``BENCH_sim.json`` at the repo root):

* **cold serial** — fresh pipeline, empty artifact cache: every workload is
  profiled, framed, scheduled and simulated from scratch;
* **warm cache** — a second fresh pipeline against the now-populated cache:
  the suite should come back in well under 2 s because each evaluation is a
  hash plus a pickle load;
* **parallel cold** — fresh pipeline and empty cache again, sharded with
  ``evaluate_all(jobs=N)``.  Speedup is bounded by the machine's core
  count (on a single-core container the pool only adds fork overhead, so
  the recorded number documents that honestly rather than asserting it).

The parallel wall clock is further decomposed so a sub-1x
``parallel_speedup`` is diagnosable instead of mysterious:

* **spawn/import overhead** — wall time to bring up a pool of ``N``
  workers and round-trip one trivial probe task through each.  This is
  everything the suite pays *before* any workload computes: process
  creation, worker bootstrap, and (under the ``spawn`` start method)
  re-importing the package — under ``fork`` the imports are inherited and
  the number is mostly process creation + IPC round-trip.
* **steady state** — the parallel wall clock minus the measured spawn
  overhead: the throughput the pool delivers once workers exist.  On a
  multi-core machine this should approach core-count scaling even when
  the end-to-end number is dragged down by spawn cost; on a single-core
  container both numbers document that the pool cannot win.

The parallel and warm paths are also checked bitwise-identical to the cold
serial rows — a wrong-but-fast pipeline is worthless.
"""

import os
import shutil
import time
from concurrent.futures import ProcessPoolExecutor

from repro import ArtifactCache, NeedlePipeline
from repro.cli import evaluation_row
from repro.workloads.base import clear_profile_cache

from .conftest import save_result, update_bench_json

#: at least 2 so the ProcessPoolExecutor path genuinely runs even on a
#: single-core container (where it measures pure pool overhead)
_JOBS = max(2, min(4, os.cpu_count() or 1))


def _rows(evaluations):
    return [evaluation_row(ev.name, ev) for ev in evaluations]


def _probe_worker(_i):
    """Trivial pool task: prove the worker is up and the package loaded."""
    import repro.pipeline  # noqa: F401  (cost is the point being measured)

    return os.getpid()


def _measure_spawn_import(jobs: int):
    """(seconds, distinct worker pids) to spawn a pool and round-trip one
    probe task per worker — the fixed cost every parallel sweep pays
    before its first workload starts computing."""
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        pids = set(pool.map(_probe_worker, range(jobs)))
    return time.perf_counter() - t0, len(pids)


def test_pipeline_scaling(tmp_path_factory, suite):
    cache_dir = str(tmp_path_factory.mktemp("scaling-cache"))

    # each timed run starts with an empty in-memory profile cache so only
    # the on-disk artifact cache (or lack of it) separates the three modes
    clear_profile_cache()
    t0 = time.perf_counter()
    cold_evs = NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate_all(suite)
    cold = time.perf_counter() - t0

    clear_profile_cache()
    t0 = time.perf_counter()
    warm_evs = NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate_all(suite)
    warm = time.perf_counter() - t0

    shutil.rmtree(cache_dir)
    clear_profile_cache()
    t0 = time.perf_counter()
    par_evs = NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate_all(
        suite, jobs=_JOBS
    )
    parallel = time.perf_counter() - t0

    spawn, workers_seen = _measure_spawn_import(_JOBS)
    steady = max(parallel - spawn, 1e-9)

    assert _rows(warm_evs) == _rows(cold_evs)
    assert _rows(par_evs) == _rows(cold_evs)

    lines = [
        "pipeline scaling over the %d-workload suite (%d cores visible)"
        % (len(suite), os.cpu_count() or 1),
        "",
        "cold serial      : %7.2f s" % cold,
        "warm cache       : %7.2f s  (%.0fx faster)" % (warm, cold / warm),
        "parallel jobs=%-2d : %7.2f s  (%.2fx vs cold serial)"
        % (_JOBS, parallel, cold / parallel),
        "",
        "parallel decomposition:",
        "  spawn+import   : %7.2f s  (%d workers probed, %.0f%% of parallel"
        " wall)" % (spawn, workers_seen, 100.0 * spawn / parallel),
        "  steady state   : %7.2f s  (%.2fx vs cold serial)"
        % (steady, cold / steady),
        "",
        "warm/parallel rows verified bitwise-identical to cold serial",
    ]
    save_result("pipeline_scaling", "\n".join(lines))
    update_bench_json("pipeline_scaling", {
        "suite_size": len(suite),
        "jobs": _JOBS,
        "cold_serial_seconds": cold,
        "warm_cache_seconds": warm,
        "parallel_seconds": parallel,
        "warm_speedup": cold / warm,
        "parallel_speedup": cold / parallel,
        "spawn_import_seconds": spawn,
        "steady_state_seconds": steady,
        "steady_state_speedup": cold / steady,
    })

    assert warm < cold
    assert warm < 2.0
    # every worker must actually have come up for the probe to mean anything
    assert workers_seen >= 1
