"""Table III — next-path target expansion across loop back edges.

For each workload: how biased is the hottest path's successor in the path
trace, does the same path repeat (2x unroll opportunity), and how much does
chaining grow the offload unit.
"""

from collections import defaultdict

from repro.regions import summarise_expansion
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        s = summarise_expansion(a.profiled.paths, a.ranked)
        rows.append(
            (
                a.name,
                s.bias * 100,
                s.bias_bucket,
                "same" if s.repeats_same_path else "different",
                s.growth_factor,
            )
        )
    return rows


def test_table3_target_expansion(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "seq.bias%", "bucket", "successor", "+ops factor"],
        rows,
        title="Table III: next-path target expansion",
    )
    buckets = defaultdict(list)
    for name, _, bucket, _, _ in rows:
        buckets[bucket].append(name)
    summary = "\n".join(
        "%-8s : %2d workloads : %s" % (b, len(ws), " ".join(ws))
        for b, ws in sorted(buckets.items(), reverse=True)
    )
    save_result("table3", text + "\n\nBucket summary\n" + summary)

    # paper: 15/29 workloads in the 90-100% bucket; ours should have a
    # comfortable majority of strongly-biased successors
    assert len(buckets["90-100%"]) >= 10
    # and a non-trivial <70% population (gzip/crafty/sjeng-style)
    assert len(buckets["<70%"]) >= 3
    # most workloads repeat the same path (paper: 17/29)
    same = sum(1 for r in rows if r[3] == "same")
    assert same >= 10
    # expansion grows the offload unit (paper: +72% average)
    growth = [r[4] for r in rows]
    assert sum(growth) / len(growth) > 1.3
