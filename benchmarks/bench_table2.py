"""Table II — characteristics of the top-5 ranked BL paths per workload.

C1 executed paths, C2 top-5 coverage, C3 instructions, C4 branches,
C5 live in/out values, C6 cancelled phis, C7 memory ops, C8 overlap.
"""

from repro.profiling import path_overlap_count
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        ranked = a.ranked
        top5 = ranked[:5]
        cov5 = sum(p.coverage for p in top5) * 100
        ins = round(sum(p.ops for p in top5) / max(1, len(top5)))
        branches = round(
            sum(p.branch_count for p in top5) / max(1, len(top5))
        )
        mem = round(
            sum(p.memory_op_count for p in top5) / max(1, len(top5))
        )
        frame = a.path_frame
        live_in = len(frame.live_ins) if frame else 0
        live_out = len(frame.live_outs) if frame else 0
        phis = frame.cancelled_phis if frame else 0
        overlap = path_overlap_count(ranked, 5)
        rows.append(
            (
                a.name,
                a.profiled.paths.executed_paths,
                round(cov5),
                ins,
                branches,
                "%d,%d" % (live_in, live_out),
                phis,
                mem,
                round(overlap, 1),
            )
        )
    return rows


def test_table2_path_characteristics(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "C1 exec", "C2 cov5%", "C3 ins", "C4 br",
         "C5 in,out", "C6 phi", "C7 mem", "C8 ovl"],
        rows,
        title="Table II: BL path characteristics (top five paths)",
    )
    save_result("table2", text)

    by_name = {r[0]: r for r in rows}
    # path-diffuse workloads have (relatively) many executed paths
    assert by_name["458.sjeng"][1] > 10 * by_name["470.lbm"][1]
    # lbm's paths are the big straight-line FP bodies
    assert by_name["470.lbm"][3] > 200
    # blackscholes paths cross many branches but carry ~no memory ops
    assert by_name["blackscholes"][4] >= 15
    assert by_name["blackscholes"][7] <= 2
    # every workload cancels at least the entry phis
    assert all(r[6] >= 0 for r in rows)
