"""Ablation — guard failure detection point (§V guard placement).

The paper's evaluation conservatively detects guard failure only at frame
end, wasting the entire invocation.  Eager detection aborts around the mean
guard position; the delta is the price of the conservative assumption and
only matters where invocations actually fail.
"""

import dataclasses

from repro import NeedlePipeline, workloads
from repro.reporting import format_table
from repro.sim import DEFAULT_CONFIG

from .conftest import save_result

#: workloads where the history predictor actually misses (failures exist)
TARGETS = ["164.gzip", "181.mcf", "freqmine", "fluidanimate", "464.h264ref"]


def _compute():
    lazy_cfg = DEFAULT_CONFIG
    eager_cfg = dataclasses.replace(
        DEFAULT_CONFIG,
        offload=dataclasses.replace(
            DEFAULT_CONFIG.offload, detect_failure_at_end=False
        ),
    )
    lazy = NeedlePipeline(lazy_cfg)
    eager = NeedlePipeline(eager_cfg)
    rows = []
    for name in TARGETS:
        w = workloads.get(name)
        l = lazy.evaluate(w).path_history
        e = eager.evaluate(w).path_history
        rows.append(
            (
                name,
                l.failures,
                l.performance_improvement * 100,
                e.performance_improvement * 100,
                (e.performance_improvement - l.performance_improvement) * 100,
            )
        )
    return rows


def test_ablation_guard_detection_point(benchmark):
    rows = benchmark.pedantic(_compute, rounds=1, iterations=1)
    text = format_table(
        ["workload", "failures", "detect-at-end %", "eager %", "delta pp"],
        rows,
        title="Ablation: guard failure detection point (history predictor)",
    )
    save_result("ablation_guards", text)

    # eager detection can only help (or tie): failures cost no more
    assert all(r[4] >= -1e-6 for r in rows)
    # somewhere in the set, eager detection visibly matters
    assert any(r[4] > 0.5 for r in rows if r[1] > 0)
