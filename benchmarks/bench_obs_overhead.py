"""Overhead budget for the observability layer (and fault-site flag tests).

Times cold serial evaluation of the full suite twice in one process:

* **no-op** — ``obs`` disabled, the production default.  Every
  instrumentation site costs one function call and one flag test.  Since
  the resilience PR, the hot loops also carry fault-injection sites
  (frame executor, interpreter entry, artifact cache); with no
  :class:`~repro.resilience.faults.FaultPlan` installed — asserted below
  — each costs the same flag-test pattern, so the no-op number and its
  <2% budget now cover the disabled-injection path too.
* **instrumented** — ``obs`` enabled: counters, gauges and span trees
  collected for the whole run.  Fault injection stays off: chaos plans
  are a test-time tool, never part of the measured production modes.
* **bus-enabled** — live telemetry on (``obs`` still disabled): ambient
  event bus with a JSONL sink, progress aggregation and an atomic
  progress file, exactly what ``--events-out``/``--progress-out``
  switch on.  Gated against no-op at ``--bus-budget`` (default 3%).

Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py

The instrumented/no-op ratio is measured same-process, same-machine, so
it is stable enough to gate on: the run fails if enabling obs costs more
than ``--enabled-budget`` (default 25%).  The no-op number is also
compared against the cold-serial baseline recorded in
``benchmarks/results/pipeline_scaling.txt``; that comparison only means
something on the machine that recorded the baseline, so it fails the run
only under ``--check-baseline`` (used when validating the documented
<2% no-op budget locally) and is otherwise reported as context.

No ``test_`` functions here on purpose: wall-clock gating does not
belong in the pytest suite.
"""

import argparse
import os
import re
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
SCALING_FILE = os.path.join(RESULTS_DIR, "pipeline_scaling.txt")


def recorded_cold_serial():
    """The committed cold-serial suite time, or None if unavailable."""
    try:
        with open(SCALING_FILE) as fh:
            text = fh.read()
    except OSError:
        return None
    match = re.search(r"cold serial\s*:\s*([0-9.]+) s", text)
    return float(match.group(1)) if match else None


def time_suite(enabled: bool, repeats: int, telemetry_dir=None) -> float:
    """Best-of-``repeats`` cold serial evaluation of the full suite.

    ``telemetry_dir`` turns the live-telemetry stack on for the run —
    ambient event bus, JSONL sink and progress-file aggregation — via
    the same options surface the CLI flags use.
    """
    from repro import NeedlePipeline, obs, suite
    from repro.options import PipelineOptions
    from repro.resilience import faults
    from repro.workloads.base import clear_profile_cache

    # all modes must measure the *disabled* fault-injection path: a
    # stray ambient plan would turn this benchmark into a chaos run
    assert not faults.enabled() and faults.active() is None

    workloads = suite()
    best = float("inf")
    for _ in range(repeats):
        clear_profile_cache()
        if enabled:
            obs.enable(reset=True)
        else:
            obs.disable()
        if telemetry_dir is None:
            pipeline = NeedlePipeline()  # no artifact cache: always cold
        else:
            opts = PipelineOptions(
                no_cache=True,
                events_out=os.path.join(telemetry_dir, "events.jsonl"),
                progress_out=os.path.join(telemetry_dir, "progress.json"),
            )
            pipeline = opts.build_pipeline()
        t0 = time.perf_counter()
        pipeline.evaluate_all(workloads)
        best = min(best, time.perf_counter() - t0)
    obs.disable()
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per mode; best is kept (default 2)",
    )
    parser.add_argument(
        "--budget", type=float, default=0.02,
        help="allowed no-op overhead vs the recorded cold-serial baseline "
        "(default 0.02 = 2%%; gating needs --check-baseline)",
    )
    parser.add_argument(
        "--enabled-budget", type=float, default=0.25,
        help="allowed instrumented-vs-no-op overhead (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--bus-budget", type=float, default=0.03,
        help="allowed bus-enabled-vs-no-op overhead for live telemetry "
        "(default 0.03 = 3%%)",
    )
    parser.add_argument(
        "--check-baseline", action="store_true",
        help="fail if the no-op run exceeds the recorded baseline by more "
        "than --budget (same-machine comparisons only)",
    )
    args = parser.parse_args(argv)

    import tempfile

    noop = time_suite(enabled=False, repeats=args.repeats)
    instrumented = time_suite(enabled=True, repeats=args.repeats)
    with tempfile.TemporaryDirectory(prefix="bench-obs-bus-") as tmp:
        bus = time_suite(enabled=False, repeats=args.repeats,
                         telemetry_dir=tmp)
    baseline = recorded_cold_serial()

    enabled_overhead = instrumented / noop - 1.0
    bus_overhead = bus / noop - 1.0
    lines = [
        "observability overhead over the cold serial suite "
        "(best of %d runs)" % args.repeats,
        "",
        "no-op (obs disabled) : %7.2f s" % noop,
        "instrumented         : %7.2f s  (%+.1f%% vs no-op)"
        % (instrumented, enabled_overhead * 100),
        "bus-enabled          : %7.2f s  (%+.1f%% vs no-op; budget %.0f%%)"
        % (bus, bus_overhead * 100, args.bus_budget * 100),
    ]
    failures = []
    if enabled_overhead > args.enabled_budget:
        failures.append(
            "instrumented run overhead %.1f%% exceeds the %.0f%% budget"
            % (enabled_overhead * 100, args.enabled_budget * 100)
        )
    if bus_overhead > args.bus_budget:
        failures.append(
            "bus-enabled run overhead %.1f%% exceeds the %.0f%% budget"
            % (bus_overhead * 100, args.bus_budget * 100)
        )
    if baseline is not None:
        noop_overhead = noop / baseline - 1.0
        lines.append(
            "recorded baseline    : %7.2f s  (no-op %+.1f%% vs recorded; "
            "budget %.0f%%)" % (baseline, noop_overhead * 100,
                                args.budget * 100)
        )
        if args.check_baseline and noop_overhead > args.budget:
            failures.append(
                "no-op overhead %.1f%% vs recorded baseline exceeds the "
                "%.0f%% budget" % (noop_overhead * 100, args.budget * 100)
            )
    else:
        lines.append("recorded baseline    : unavailable")

    lines.append("")
    lines.append(
        "FAIL: " + "; ".join(failures) if failures
        else "within budget"
    )
    report = "\n".join(lines)
    print(report)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "obs_overhead.txt"), "w") as fh:
        fh.write(report + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
