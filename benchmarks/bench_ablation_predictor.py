"""Ablation — invocation-predictor history length (§V history table).

Longer path-id histories disambiguate periodic phase schedules (ferret,
swaptions) but cannot manufacture signal for data-random control
(blackscholes/bodytrack/freqmine stay unpredictable at any depth).
"""

from repro.accel import HistoryPredictor, evaluate_predictor
from repro.reporting import format_table

from .conftest import save_result

TARGETS = ["ferret", "swaptions", "164.gzip", "blackscholes", "freqmine"]
LENGTHS = [1, 2, 3, 5]


def _compute(analyses):
    by_name = {a.name: a for a in analyses}
    rows = []
    for name in TARGETS:
        a = by_name[name]
        profile = a.profiled.paths
        targets = set(a.path_frame.region.source_paths)
        cells = [name]
        for h in LENGTHS:
            ev = evaluate_predictor(
                profile.trace, targets, HistoryPredictor(history_length=h), h
            )
            cells.append(round(ev.precision * 100))
        rows.append(tuple(cells))
    return rows


def test_ablation_predictor_history_length(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload"] + ["h=%d prec%%" % h for h in LENGTHS],
        rows,
        title="Ablation: invocation predictor history length",
    )
    save_result("ablation_predictor", text)

    by_name = {r[0]: r for r in rows}
    # periodic workloads benefit from depth
    assert by_name["ferret"][len(LENGTHS)] >= by_name["ferret"][1]
    # data-random workloads stay hard no matter the depth: their best
    # precision stays below the periodic workloads' best
    assert max(by_name["freqmine"][1:]) <= max(by_name["ferret"][1:])
