"""Ablation — braid merge depth (§IV-B's coverage vs region-size trade-off).

Sweeping the number of paths a braid may absorb shows coverage rising
monotonically while the region grows; coverage-per-op tells whether the
added paths pay for their area.
"""

from repro.regions import build_braids
from repro.reporting import format_table

from .conftest import save_result

TARGETS = ["453.povray", "186.crafty", "blackscholes", "swaptions"]
DEPTHS = [1, 2, 4, 8, None]


def _compute(analyses):
    by_name = {a.name: a for a in analyses}
    rows = []
    for name in TARGETS:
        a = by_name[name]
        for depth in DEPTHS:
            braids = build_braids(
                a.profiled.function, a.ranked, max_paths_per_braid=depth
            )
            top = braids[0]
            rows.append(
                (
                    name,
                    depth if depth is not None else "all",
                    top.n_paths,
                    round(top.coverage * 100, 1),
                    top.region.op_count,
                    round(top.region.coverage_per_op * 1000, 2),
                    len(top.region.guard_branches()),
                    len(top.region.internal_branches()),
                )
            )
    return rows


def test_ablation_braid_merge_depth(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "depth", "merged", "cov %", "ops", "cov/op (x1e3)",
         "guards", "IFs"],
        rows,
        title="Ablation: braid merge depth (coverage vs size)",
    )
    save_result("ablation_braid_depth", text)

    # per workload: coverage grows monotonically with depth, ops too
    for name in TARGETS:
        series = [r for r in rows if r[0] == name]
        covs = [r[3] for r in series]
        ops = [r[4] for r in series]
        assert all(a <= b + 1e-9 for a, b in zip(covs, covs[1:])), name
        assert all(a <= b for a, b in zip(ops, ops[1:])), name
    # merging more paths never decreases internal IF count
    for name in TARGETS:
        series = [r for r in rows if r[0] == name]
        ifs = [r[7] for r in series]
        assert ifs[0] <= ifs[-1]
