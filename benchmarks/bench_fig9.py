"""Fig. 9 — whole-workload performance improvement from offload.

Three bars per workload: BL-path with Oracle invocation, BL-path with the
history predictor, and the top Braid.  Paper headline: mean ~24% for paths
(5 workloads degrade), mean ~33% for braids (low degradation potential);
high-ILP workloads (lbm, ferret, swaptions, sar-pfa-interp1) near the top,
gcc/vpr near zero, the freqmine/bodytrack/blackscholes trio suffering under
the history predictor.
"""

import statistics

from repro.reporting import bar_chart, format_table

from .conftest import save_result


def _compute(evaluations):
    rows = []
    for ev in evaluations:
        rows.append(
            (
                ev.name,
                ev.path_oracle.performance_improvement,
                ev.path_history.performance_improvement,
                ev.path_history.predictor_precision,
                ev.braid.performance_improvement,
            )
        )
    return rows


def test_fig9_performance_improvement(benchmark, evaluations):
    rows = benchmark.pedantic(
        _compute, args=(evaluations,), rounds=1, iterations=1
    )
    table = format_table(
        ["workload", "path oracle %", "path history %", "precision %", "braid %"],
        [
            (n, po * 100, ph * 100, pr * 100, br * 100)
            for n, po, ph, pr, br in rows
        ],
        title="Fig. 9: performance improvement (cycle reduction)",
    )
    chart = bar_chart(
        [(n, br) for n, _, _, _, br in rows], title="Fig. 9 (braid bars)"
    )
    mean_po = statistics.mean(r[1] for r in rows)
    mean_ph = statistics.mean(r[2] for r in rows)
    mean_br = statistics.mean(r[4] for r in rows)
    summary = (
        "means: path-oracle %.1f%%  path-history %.1f%%  braid %.1f%%\n"
        "(paper: ~24%% path mean, ~33%% braid mean; our host model is\n"
        " weaker relative to the 128-FU fabric, scaling gains up ~1.5x)"
        % (mean_po * 100, mean_ph * 100, mean_br * 100)
    )
    save_result("fig9", table + "\n\n" + chart + "\n\n" + summary)

    by_name = {r[0]: r for r in rows}

    # headline means are positive and braid > path (paper: 24% vs 33%)
    assert mean_po > 0.10
    assert mean_br > mean_po

    # ① high-ILP regular workloads win big
    for name in ("470.lbm", "183.equake", "482.sphinx3", "streamcluster"):
        assert by_name[name][1] > 0.4, name

    # ② low-margin workloads hover near zero for paths
    for name in ("186.crafty", "458.sjeng", "401.bzip2"):
        assert abs(by_name[name][1]) < 0.15, name

    # ③ the pathological trio never profits from path offload, and at least
    # one of them actively degrades under the history predictor
    trio = ("freqmine", "bodytrack", "blackscholes")
    for name in trio:
        assert by_name[name][1] < 0.1, name
    assert min(by_name[n][2] for n in trio) < -0.05

    # braids rescue the unpredictable workloads (blackscholes story)
    assert by_name["blackscholes"][4] > 0.3
    assert by_name["bodytrack"][4] > 0.3

    # ④ at most a couple of workloads see braid < path-oracle (paper: one,
    # sar-pfa-interp1; ours is vpr)
    worse = [n for n, po, _, _, br in rows if br < po - 0.02]
    assert len(worse) <= 3, worse

    # five-ish workloads degrade for paths, with bounded damage
    degraders = [r for r in rows if r[1] < -0.005]
    assert 2 <= len(degraders) <= 10
