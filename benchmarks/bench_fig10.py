"""Fig. 10 — net energy reduction for Braid offload.

Energy falls roughly in proportion to coverage because every offloaded op
elides the host front-end and OOO window.  Paper headline: 20% mean
reduction; FP workloads enjoy larger per-op savings on the spatial fabric.
"""

import statistics

from repro.reporting import bar_chart, format_table

from .conftest import save_result


def _compute(evaluations):
    rows = []
    for ev in evaluations:
        rows.append(
            (
                ev.name,
                ev.braid.coverage,
                ev.braid.energy_reduction,
                ev.flavor,
            )
        )
    return rows


def test_fig10_energy_reduction(benchmark, evaluations):
    rows = benchmark.pedantic(
        _compute, args=(evaluations,), rounds=1, iterations=1
    )
    table = format_table(
        ["workload", "braid coverage %", "energy reduction %", "flavor"],
        [(n, c * 100, e * 100, f) for n, c, e, f in rows],
        title="Fig. 10: net energy reduction for Braids",
    )
    chart = bar_chart([(n, e) for n, _, e, _ in rows], title="Fig. 10 (chart)")
    mean_e = statistics.mean(r[2] for r in rows)
    summary = (
        "mean energy reduction: %.1f%% (paper: 20%%; our braids cover more\n"
        "of the hot function because the synthetic kernels lack cold\n"
        "scaffolding, which scales the net saving up accordingly)" % (mean_e * 100)
    )
    save_result("fig10", table + "\n\n" + chart + "\n\n" + summary)

    # headline: a solid double-digit mean reduction
    assert mean_e > 0.15
    # energy tracks coverage: the low-coverage outlier saves the least
    low_cov = min(rows, key=lambda r: r[1])
    assert low_cov[2] <= mean_e
    # nothing catastrophically regresses
    assert all(e > -0.25 for _, _, e, _ in rows)
    # reduction correlates with coverage across the suite
    n = len(rows)
    covs = [r[1] for r in rows]
    ens = [r[2] for r in rows]
    mc, me = sum(covs) / n, sum(ens) / n
    cov_var = sum((c - mc) ** 2 for c in covs)
    en_var = sum((e - me) ** 2 for e in ens)
    if cov_var > 1e-12 and en_var > 1e-12:
        corr = sum(
            (c - mc) * (e - me) for c, e in zip(covs, ens)
        ) / (cov_var ** 0.5 * en_var ** 0.5)
        assert corr > 0.2
