"""Table IV — Braid characteristics.

C1 braid count, C2 avg paths per braid, C3 top braid coverage, C4 ops,
C5 guards, C6 internal IFs introduced by merging, C7 live values.
"""

from repro.regions import braid_table_row, build_braids
from repro.reporting import format_table

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        # Table IV reports the full merge (every executed path groups into
        # some braid), unlike the offload selection which keeps hot paths
        braids = build_braids(a.profiled.function, a.ranked)
        row = braid_table_row(a.profiled.function, braids)
        rows.append(
            (
                a.name,
                row.n_braids,
                round(row.avg_paths_per_braid, 1),
                round(row.top_coverage * 100),
                row.top_ops,
                row.top_guards,
                row.top_ifs,
                "%d,%d" % (row.live_ins, row.live_outs),
            )
        )
    return rows


def test_table4_braid_characteristics(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    text = format_table(
        ["workload", "C1 braids", "C2 paths/braid", "C3 cov%", "C4 ins",
         "C5 guards", "C6 IFs", "C7 in,out"],
        rows,
        title="Table IV: Braid characteristics",
    )
    save_result("table4", text)

    by_name = {r[0]: r for r in rows}
    # merging raises coverage beyond the single hottest path everywhere a
    # workload has sibling paths
    for a_name in ("186.crafty", "458.sjeng", "blackscholes"):
        assert by_name[a_name][2] > 1.0
    # braids introduce internal IFs when they merge control flow
    assert sum(1 for r in rows if r[6] > 0) >= 10
    # swaptions is the big outlier braid (paper: 1704 ins)
    assert by_name["swaptions"][4] > 300


def test_braids_have_fewer_guards_than_paths(analyses):
    """§IV-B: on many applications the braid needs fewer guards than its
    hottest constituent path (merging internalises branches)."""
    from repro.regions import path_guard_count, path_to_region

    fewer = 0
    total = 0
    for a in analyses:
        braids = build_braids(a.profiled.function, a.ranked)
        if not braids or not a.ranked:
            continue
        total += 1
        braid_guards = len(braids[0].region.guard_branches())
        path_guards = path_guard_count(
            path_to_region(a.profiled.function, a.ranked[0])
        )
        if braid_guards <= path_guards:
            fewer += 1
    assert fewer >= total * 0.6
