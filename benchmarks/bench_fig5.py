"""Fig. 5 — fraction of cold operations folded into Hyperblocks.

If-conversion makes a local decision per branch; the ops it drags in from
rarely-executed sides waste accelerator area and energy.
"""

from repro.regions import (
    build_hyperblock,
    build_loop_hyperblock,
    hottest_innermost_loop,
    hyperblock_cold_stats,
)
from repro.reporting import format_table, histogram

from .conftest import save_result


def _compute(analyses):
    rows = []
    for a in analyses:
        fn = a.profiled.function
        ep = a.profiled.edges
        loop = hottest_innermost_loop(fn, ep)
        if loop is not None:
            hb = build_loop_hyperblock(fn, loop, ep)
        else:
            hb = build_hyperblock(fn, ep)
        stats = hyperblock_cold_stats(hb, ep, cold_threshold=0.5)
        rows.append(
            (a.name, stats.total_ops, stats.cold_ops, stats.cold_fraction)
        )
    return rows


def test_fig5_hyperblock_cold_ops(benchmark, analyses):
    rows = benchmark.pedantic(_compute, args=(analyses,), rounds=1, iterations=1)
    table = format_table(
        ["workload", "HB ops", "cold ops", "cold %"],
        [(n, t, c, f * 100) for n, t, c, f in rows],
        title="Fig. 5: cold operations included in hyperblocks",
    )
    chart = histogram([(n, f) for n, _, _, f in rows], title="Fig. 5 (chart)")
    save_result("fig5", table + "\n\n" + chart)

    # hyperblocks fold in cold ops for a good share of the suite
    assert sum(1 for _, _, c, _ in rows if c > 0) >= 8
    assert all(0.0 <= f <= 1.0 for _, _, _, f in rows)
