from repro.sim import Cache, CacheConfig, MemorySystem, MemoryHierarchyConfig


def small_cache(sets=4, assoc=2, line=64):
    return Cache(CacheConfig(size_bytes=sets * assoc * line, associativity=assoc, line_bytes=line))


def test_cold_miss_then_hit():
    c = small_cache()
    assert not c.access(0x1000, False)
    assert c.access(0x1000, False)
    assert c.access(0x1010, False)  # same line
    assert c.stats.hits == 2 and c.stats.misses == 1


def test_lru_eviction():
    c = small_cache(sets=1, assoc=2)
    a, b, d = 0x0, 0x40, 0x80  # all map to set 0 (1 set)
    c.access(a, False)
    c.access(b, False)
    c.access(a, False)  # a is now MRU
    c.access(d, False)  # evicts b
    assert c.contains(a) and c.contains(d)
    assert not c.contains(b)
    assert c.stats.evictions == 1


def test_dirty_eviction_counts_writeback():
    c = small_cache(sets=1, assoc=1)
    c.access(0x0, True)
    c.access(0x40, False)  # evicts dirty line
    assert c.stats.writebacks == 1


def test_invalidate_reports_dirtiness():
    c = small_cache()
    c.access(0x100, True)
    assert c.invalidate(0x100) is True
    assert not c.contains(0x100)
    assert c.invalidate(0x100) is False


def test_memory_system_levels():
    ms = MemorySystem()
    r1 = ms.host_access(0x4000, False)
    assert r1.level == "dram"
    r2 = ms.host_access(0x4000, False)
    assert r2.level == "l1"
    assert r2.latency == ms.hierarchy.l1.latency
    # a different line that only lives in L2 after L1 eviction pressure
    assert r1.latency > r2.latency


def test_memory_system_l2_hit_after_l1_evict():
    hier = MemoryHierarchyConfig(
        l1=CacheConfig(size_bytes=2 * 64, associativity=1, latency=2),
    )
    ms = MemorySystem(hier)
    ms.host_access(0x0, False)  # set 0
    ms.host_access(0x80, False)  # set 0 too (2 sets? size 128B/1way=2 sets)
    ms.host_access(0x100, False)  # evicts 0x0 from L1
    res = ms.host_access(0x0, False)
    assert res.level == "l2"


def test_accel_write_invalidates_host_copy():
    ms = MemorySystem()
    ms.host_access(0x2000, True)  # dirty in L1
    assert ms.l1.contains(0x2000)
    res = ms.accel_access(0x2000, True)
    assert not ms.l1.contains(0x2000)
    assert ms.coherence_invalidations == 1
    # extra writeback latency charged
    assert res.latency > ms.hierarchy.l2.latency


def test_accel_read_does_not_invalidate():
    ms = MemorySystem()
    ms.host_access(0x2000, False)
    ms.accel_access(0x2000, False)
    assert ms.l1.contains(0x2000)


def test_banked_l2_distributes():
    ms = MemorySystem()
    for i in range(16):
        ms.l2.access(i * 64, False)
    used = sum(1 for b in ms.l2.banks if b.stats.accesses > 0)
    assert used == 8  # Table V: 8 banks


def test_profile_stream():
    ms = MemorySystem()
    stream = [("load", 0x1000), ("load", 0x1000), ("store", 0x2000)]
    prof = ms.profile_stream(stream)
    assert prof.loads == 2 and prof.stores == 1
    assert prof.avg_load_latency > 0
    assert sum(prof.level_counts.values()) == 3
