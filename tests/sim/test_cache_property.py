"""Property tests: the set-associative cache against a reference LRU model,
and OOO-model resource monotonicity."""

from __future__ import annotations

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.sim import Cache, CacheConfig, HostConfig, OOOModel


class _ReferenceLRU:
    """Oracle: per-set ordered dicts with explicit LRU handling."""

    def __init__(self, sets: int, assoc: int, line: int):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.n_sets = sets
        self.assoc = assoc
        self.line = line

    def access(self, addr: int) -> bool:
        line = addr // self.line
        s = self.sets[line % self.n_sets]
        tag = line // self.n_sets
        if tag in s:
            s.move_to_end(tag)
            return True
        if len(s) >= self.assoc:
            s.popitem(last=False)
        s[tag] = True
        return False


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 4095), min_size=1, max_size=300),
    sets=st.sampled_from([1, 2, 4, 8]),
    assoc=st.sampled_from([1, 2, 4]),
)
def test_cache_matches_reference_lru(addrs, sets, assoc):
    line = 64
    cache = Cache(CacheConfig(size_bytes=sets * assoc * line, associativity=assoc, line_bytes=line))
    ref = _ReferenceLRU(sets, assoc, line)
    for addr in addrs:
        assert cache.access(addr, False) == ref.access(addr), hex(addr)


@settings(max_examples=15, deadline=None)
@given(
    rob=st.sampled_from([16, 32, 96, 256]),
    width=st.sampled_from([1, 2, 4, 8]),
)
def test_ooo_more_resources_never_slower(rob, width):
    """Monotonicity: growing the ROB or width never increases cycles."""
    from repro.interp import Interpreter, TraceRecorder
    from tests.conftest import build_counted_loop

    m, fn = build_counted_loop()
    rec = TraceRecorder([fn])
    Interpreter(m, tracer=rec).run(fn.name, [40])
    trace = rec.traces[fn].blocks

    base = OOOModel(HostConfig(rob_entries=rob, fetch_width=width,
                               issue_width=width, retire_width=width))
    bigger = OOOModel(HostConfig(rob_entries=rob * 2, fetch_width=width * 2,
                                 issue_width=width * 2, retire_width=width * 2))
    assert bigger.simulate(trace).cycles <= base.simulate(trace).cycles
