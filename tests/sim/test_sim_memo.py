"""Cross-strategy simulation memo: identity, sharing, persistence.

The memo must be invisible in the numbers — memoized, cold, parallel and
cache-served runs all produce byte-identical results — and visible only
in the work: three strategies per workload share one calibration, one
path-cost table and one schedule pool, and (with an artifact cache) the
tables survive process death.
"""

import pickle

from repro import obs, workloads
from repro.artifacts import (
    ArtifactCache,
    CALIBRATION_KIND,
    PATH_COSTS_KIND,
)
from repro.frames import build_frame
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.profiling import rank_paths
from repro.regions import path_to_region
from repro.sim import OffloadSimulator, SimulationMemo, content_key
from repro.workloads import profile_workload

SUBSET = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


def _outcome_fields(outcome):
    return None if outcome is None else vars(outcome).copy()


def _flatten(ev):
    return {
        "summary": vars(ev.summary).copy(),
        "path_oracle": _outcome_fields(ev.path_oracle),
        "path_history": _outcome_fields(ev.path_history),
        "braid": _outcome_fields(ev.braid),
        "hls": _outcome_fields(ev.hls),
        "braid_schedule": _outcome_fields(ev.braid_schedule),
    }


def _suite(names):
    return [workloads.get(name) for name in names]


# -- memo unit behaviour ----------------------------------------------------


def test_content_memoizes_and_counts():
    memo = SimulationMemo()
    calls = []
    assert memo.content("calibration", "k", lambda: calls.append(1) or 42) == 42
    assert memo.content("calibration", "k", lambda: calls.append(1) or 99) == 42
    assert calls == [1]
    assert memo.hits == 1 and memo.misses == 1


def test_identity_guard_requires_same_object():
    memo = SimulationMemo()
    a, b = [1], [1]  # equal values, distinct identities
    assert memo.identity("rle", a, None, lambda: "A") == "A"
    assert memo.identity("rle", a, None, lambda: "B") == "A"
    assert memo.identity("rle", b, None, lambda: "B") == "B"


def test_snapshot_merge_round_trip():
    worker = SimulationMemo()
    worker.content("calibration", "k1", lambda: "v1")
    snap = pickle.loads(pickle.dumps(worker.snapshot()))
    parent = SimulationMemo()
    parent.merge(snap)
    # the merged entry is served without recomputation
    assert parent.content("calibration", "k1", lambda: "WRONG") == "v1"
    parent.merge(None)  # tolerated no-op


def test_content_persists_through_artifact_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = SimulationMemo(cache=ArtifactCache(cache_dir))
    key = content_key("workload", "memcfg")
    first.content(CALIBRATION_KIND, key, lambda: {"lat": 3.5})

    # a fresh memo over the same cache dir (= a retried worker, or the
    # next process) is served from disk without recomputing
    second = SimulationMemo(cache=ArtifactCache(cache_dir))
    assert second.content(CALIBRATION_KIND, key, lambda: "WRONG") == {"lat": 3.5}
    assert second.misses == 0 and second.hits == 1


# -- simulator-level byte-identity -----------------------------------------


def _profiled(name):
    return profile_workload(workloads.get(name), use_cache=False)


def test_memoized_matches_cold_calibration_and_costs():
    profiled = _profiled(SUBSET[0])
    memo_sim = OffloadSimulator()  # private memo by default
    cold_sim = OffloadSimulator(memo=False)

    cal_m = memo_sim.calibrate(profiled.trace)
    cal_c = cold_sim.calibrate(profiled.trace)
    assert pickle.dumps(cal_m) == pickle.dumps(cal_c)
    # second memoized call returns the identical record
    assert memo_sim.calibrate(profiled.trace) is cal_m

    costs_m = memo_sim.path_costs(profiled.paths, cal_m.host_load_latency)
    costs_c = cold_sim.path_costs(profiled.paths, cal_c.host_load_latency)
    assert pickle.dumps(costs_m) == pickle.dumps(costs_c)


def test_memoized_matches_cold_outcomes():
    profiled = _profiled(SUBSET[0])
    frame = build_frame(
        path_to_region(profiled.function, rank_paths(profiled.paths)[0])
    )
    memo_sim = OffloadSimulator()
    cold_sim = OffloadSimulator(memo=False)
    for predictor in ("oracle", "history"):
        a = memo_sim.simulate_offload(
            profiled.workload.name, profiled.paths, frame, predictor,
            profiled.trace,
        )
        b = cold_sim.simulate_offload(
            profiled.workload.name, profiled.paths, frame, predictor,
            profiled.trace,
        )
        assert _outcome_fields(a) == _outcome_fields(b)


def test_three_strategies_share_sub_simulations():
    pipe = NeedlePipeline()
    with obs.scoped() as reg:
        pipe.evaluate(workloads.get(SUBSET[0]))
    memo = pipe.sim_memo
    assert memo is not None and memo.hits > 0
    hits = reg.counter("simcache.hits")
    # calibration and path costs computed once, reused by the other runs
    assert hits.value(table="calibration") >= 2
    assert hits.value(table="pathcosts") >= 1
    assert reg.counter("simcache.misses").value(table="calibration") == 1


def test_rle_ratio_gauge_published():
    pipe = NeedlePipeline()
    with obs.scoped() as reg:
        pipe.evaluate(workloads.get(SUBSET[0]))
    series = dict(reg.gauge("trace.rle_ratio").series())
    assert series  # at least one workload reported
    for _labels, ratio in series.items():
        assert 0.0 < ratio <= 1.0


# -- pipeline-level byte-identity across execution modes --------------------


def test_memo_serial_parallel_and_cached_are_byte_identical(tmp_path):
    suite = _suite(SUBSET)
    reference = [
        _flatten(ev)
        for ev in NeedlePipeline(
            options=PipelineOptions(no_cache=True, no_sim_memo=True)
        ).evaluate_all(suite)
    ]

    memo_serial = NeedlePipeline(
        options=PipelineOptions(no_cache=True)
    ).evaluate_all(suite)
    assert [_flatten(ev) for ev in memo_serial] == reference

    memo_parallel = NeedlePipeline(
        options=PipelineOptions(no_cache=True, jobs=4)
    ).evaluate_all(suite)
    assert [_flatten(ev) for ev in memo_parallel] == reference

    cache_dir = str(tmp_path / "cache")
    warm = NeedlePipeline(cache=ArtifactCache(cache_dir))
    assert [_flatten(ev) for ev in warm.evaluate_all(suite)] == reference
    # a fresh pipeline over the same cache is served from disk — including
    # the persisted calibration/path-cost tables — with identical bytes
    served = NeedlePipeline(cache=ArtifactCache(cache_dir))
    assert [_flatten(ev) for ev in served.evaluate_all(suite)] == reference
    assert served.cache.hits > 0


def test_parallel_workers_ship_memo_snapshots_back():
    pipe = NeedlePipeline(options=PipelineOptions(no_cache=True, jobs=4))
    pipe.evaluate_all(_suite(SUBSET))
    # without an artifact cache the only way content entries reach the
    # parent memo is the per-result snapshot merge
    assert pipe.sim_memo is not None
    assert pipe.sim_memo.snapshot()["content"]
    kinds = {kind for kind, _key in pipe.sim_memo.snapshot()["content"]}
    assert kinds == {CALIBRATION_KIND, PATH_COSTS_KIND}


def test_persisted_tables_survive_process_boundary(tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = NeedlePipeline(cache=ArtifactCache(cache_dir))
    first.evaluate(workloads.get(SUBSET[0]))

    # second pipeline, same disk cache: wipe the *evaluation* entries so
    # it must re-simulate, and verify the calibration table is served
    import glob
    import os

    for path in glob.glob(
        os.path.join(cache_dir, "evaluation", "**", "*.pkl"), recursive=True
    ):
        os.unlink(path)
    second = NeedlePipeline(cache=ArtifactCache(cache_dir))
    with obs.scoped() as reg:
        ev = second.evaluate(workloads.get(SUBSET[0]))
    assert ev.braid is not None
    assert reg.counter("simcache.misses").value(table="calibration") == 0
    assert reg.counter("simcache.hits").value(table="calibration") >= 3


def test_no_sim_memo_option_disables_memo():
    pipe = NeedlePipeline(options=PipelineOptions(no_cache=True, no_sim_memo=True))
    assert pipe.sim_memo is None
    with obs.scoped() as reg:
        pipe.evaluate(workloads.get(SUBSET[0]))
    assert reg.counter("simcache.hits").value(table="calibration") == 0
    assert reg.counter("simcache.misses").value(table="calibration") == 0
