"""Vectorized OOO walk: bitwise parity, tier selection, memoization.

The contract under test is strict: for fixed-latency models the
columnar walk (numpy lane-lockstep and compiled per-lane Python alike)
must reproduce ``model.simulate(blocks × reps)`` **bit for bit** —
including the steady-state closure and the ROB-ring filling transient
(the 458.sjeng shape) that defeats periodicity inside the production
amortisation window.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import F64, I32, IRBuilder, Module
from repro.sim import (
    HostConfig,
    MemorySystem,
    OOOModel,
    SimulationMemo,
    simulate_paths_batch,
)
from repro.sim.array_kernels import (
    BACKEND_NUMPY,
    BACKEND_PYTHON,
    FORCE_PYTHON_ENV,
    get_numpy,
)
from repro.sim import ooo_columns
from repro.sim.ooo_columns import (
    LANE_TIER_ENV,
    LANE_TIER_SCALAR,
    LANE_TIER_VECTOR,
    compile_path,
    compile_paths,
    select_lane_tier,
    simulate_paths_tiered,
    simulate_paths_vectorized,
)
from repro.workloads import get as get_workload
from repro.workloads.base import profile_workload


def _bits(res):
    return vars(res).copy()


def _backends():
    out = [BACKEND_PYTHON]
    if get_numpy() is not None:
        out.append(BACKEND_NUMPY)
    return out


def _assert_plan_matches_oracle(model, plan, **kwargs):
    ref = OOOModel(model.config, fixed_load_latency=model.fixed_load_latency)
    oracle = {
        key: ref.simulate(list(blocks) * reps) for key, blocks, reps in plan
    }
    for backend in _backends():
        got = simulate_paths_vectorized(model, plan, backend=backend, **kwargs)
        for key, blocks, reps in plan:
            assert _bits(got[key]) == _bits(oracle[key]), (key, backend)


# -- real-workload parity ------------------------------------------------------


@pytest.fixture(scope="module")
def real_plan():
    """(key, blocks, reps) lanes from two structurally different workloads."""
    plan = []
    for name in ("dwt53", "429.mcf"):
        prof = profile_workload(get_workload(name)).paths
        for pid in prof.counts:
            blocks = tuple(prof.decode(pid))
            for reps in (1, 4, 7):
                plan.append(((name, pid, reps), blocks, reps))
    return plan


def test_vectorized_matches_oracle_on_real_paths(real_plan):
    _assert_plan_matches_oracle(OOOModel(), real_plan)


def test_tiered_matches_oracle_for_every_forced_tier(real_plan, monkeypatch):
    ref = OOOModel()
    oracle = {
        key: ref.simulate(list(blocks) * reps)
        for key, blocks, reps in real_plan
    }
    for tier in ("scalar", "batch", "vector"):
        monkeypatch.setenv(LANE_TIER_ENV, tier)
        stats = {}
        got = simulate_paths_tiered(OOOModel(), real_plan, stats=stats)
        assert stats["decision"].tier == tier
        assert stats["decision"].reason == "forced-env"
        for key in oracle:
            assert _bits(got[key]) == _bits(oracle[key]), (key, tier)


# -- random path geometries (hypothesis) ---------------------------------------

_geometries = st.fixed_dictionaries(
    {
        # per block: op specs (is_fp, two operand back-references)
        "blocks": st.lists(
            st.lists(
                st.tuples(
                    st.booleans(),
                    st.integers(0, 40),
                    st.integers(0, 40),
                ),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=3,
        ),
        # per block: φ source back-references into the whole value list,
        # resolved after construction — later-block sources become
        # previous-repetition reads (use-before-def in path order)
        "phis": st.lists(
            st.lists(st.integers(0, 60), min_size=0, max_size=2),
            min_size=3,
            max_size=3,
        ),
        "reps": st.sampled_from([1, 2, 3, 4, 7]),
        # small ROBs force the filling-phase transient mid-walk
        "rob": st.sampled_from([8, 12, 32, 96]),
        "alus": st.sampled_from([1, 2, 6]),
        "fetch": st.sampled_from([2, 4]),
    }
)


def _build_path(spec):
    """Materialise a drawn geometry as IR blocks forming a cyclic path."""
    module = Module()
    fn = module.add_function("g", [("a", I32)], I32)
    b = IRBuilder(fn)
    blocks = [b.add_block("b%d" % i) for i in range(len(spec["blocks"]))]
    vals = []
    phi_nodes = []
    for i, ops in enumerate(spec["blocks"]):
        b.set_block(blocks[i])
        for refs in spec["phis"][i % len(spec["phis"])]:
            node = b.phi(I32)
            phi_nodes.append((node, refs, i))
            vals.append(node)
        for is_fp, r1, r2 in ops:
            pool = vals or [fn.arg("a")]
            lhs = pool[r1 % len(pool)]
            rhs = pool[r2 % len(pool)]
            if is_fp:
                inst = b.binop("fmul", b.unop("sitofp", lhs, F64), 2.0)
            else:
                inst = b.binop("add", lhs, rhs)
            vals.append(inst)
        b.br(blocks[(i + 1) % len(blocks)])
    # bind φ sources now that every value exists: the path predecessor of
    # block i is block i-1, and of block 0 the last block (wraparound)
    for node, refs, i in phi_nodes:
        pred = blocks[i - 1] if i else blocks[-1]
        node.add_incoming(pred, vals[refs % len(vals)])
    return module, tuple(blocks)


@settings(max_examples=60, deadline=None)
@given(spec=_geometries)
def test_vectorized_matches_oracle_on_random_geometry(spec):
    module, blocks = _build_path(spec)
    cfg = HostConfig(
        rob_entries=spec["rob"],
        int_alus=spec["alus"],
        fetch_width=spec["fetch"],
    )
    model = OOOModel(cfg)
    plan = [(0, blocks, spec["reps"])]
    _assert_plan_matches_oracle(model, plan)
    del module  # keep-alive until here: blocks reference the IR


def test_sjeng_shaped_rob_filling_transient():
    """Pinned regression: a lane whose ROB ring only fills mid-walk.

    458.sjeng's longest path has stride ≈ 36 < rob_entries = 96: the
    ring is not full until the third repetition, so inside the
    production ``amortise_reps=4`` window there are never two
    comparable consecutive boundaries and the walk must stay explicit —
    closure would extrapolate from pre-transient state and diverge.
    """
    module = Module()
    fn = module.add_function("s", [("a", I32)], I32)
    b = IRBuilder(fn)
    blk = b.add_block("body")
    b.set_block(blk)
    phi = b.phi(I32)
    cur = phi
    for i in range(35):
        cur = b.binop("add", cur, 1) if i % 3 else b.binop("add", cur, cur)
    b.br(blk)
    phi.add_incoming(blk, cur)
    blocks = (blk,)
    model = OOOModel()  # rob_entries=96 > stride=36, 4·36 = 144 > 96
    plan = [(0, blocks, 4)]
    ref = OOOModel()
    oracle = _bits(ref.simulate(list(blocks) * 4))
    for backend in _backends():
        stats = {}
        got = simulate_paths_vectorized(
            model, plan, backend=backend, stats=stats
        )
        assert _bits(got[0]) == oracle, backend
        # the filling transient defeats closure inside the window
        assert stats["closed"] == 0, backend
    del module


def test_closure_engages_on_periodic_lane():
    module = Module()
    fn = module.add_function("p", [("a", I32)], I32)
    b = IRBuilder(fn)
    blk = b.add_block("body")
    b.set_block(blk)
    phi = b.phi(I32)
    cur = b.binop("add", phi, 1)
    b.br(blk)
    phi.add_incoming(blk, cur)
    model = OOOModel(HostConfig(rob_entries=2))  # ring fills immediately
    plan = [(0, (blk,), 40)]
    for backend in _backends():
        stats = {}
        got = simulate_paths_vectorized(
            model, plan, backend=backend, stats=stats
        )
        ref = OOOModel(HostConfig(rob_entries=2))
        assert _bits(got[0]) == _bits(ref.simulate([blk] * 40))
        assert stats["closed"] == 1, backend
    del module


def _phi_chain_block():
    """Self-looping block whose φ chain recedes two repetitions back.

    φ0 reads φ1 and φ1 reads the fmul: the per-event walk resolves φs
    sequentially, so φ0's value in rep ``N`` is the fmul of rep ``N-2``
    — a dependency the compiled two-repetition slot window cannot
    express.  Pinned from a hypothesis falsifying example (cycles 11
    vs the oracle's 14 at reps=3 before the scalar-walk fallback).
    """
    module = Module()
    fn = module.add_function("g", [("a", I32)], I32)
    b = IRBuilder(fn)
    blk = b.add_block("b0")
    b.set_block(blk)
    phi0 = b.phi(I32)
    phi1 = b.phi(I32)
    fmul = b.binop("fmul", b.unop("sitofp", phi0, F64), 2.0)
    b.br(blk)
    phi0.add_incoming(blk, phi1)
    phi1.add_incoming(blk, fmul)
    del fmul
    return module, (blk,)


def test_deep_phi_chain_falls_back_to_scalar_walk():
    module, blocks = _phi_chain_block()
    cfg = HostConfig(rob_entries=8, int_alus=1, fetch_width=2)
    model = OOOModel(cfg)
    assert compile_path(model, blocks) is None
    for reps in (1, 2, 3, 4, 7, 12):
        ref = OOOModel(cfg)
        oracle = _bits(ref.simulate(list(blocks) * reps))
        for backend in _backends():
            stats = {}
            got = simulate_paths_vectorized(
                model, [(0, blocks, reps)], backend=backend, stats=stats
            )
            assert _bits(got[0]) == oracle, (reps, backend)
            assert stats["fallback"] == 1, (reps, backend)
        batch = simulate_paths_batch(model, [(0, blocks, reps)], gate=False)
        assert _bits(batch[0]) == oracle, reps
    del module


def test_pure_phi_cycle_still_compiles():
    # φa and φb feed each other through the back edge: their values
    # recede to the trace head where every φ grounds at 0.0, so the
    # window holds them and no fallback is needed
    module = Module()
    fn = module.add_function("c", [("a", I32)], I32)
    b = IRBuilder(fn)
    blk = b.add_block("b0")
    b.set_block(blk)
    phi_a = b.phi(I32)
    phi_b = b.phi(I32)
    add = b.binop("add", phi_a, phi_b)
    b.br(blk)
    phi_a.add_incoming(blk, phi_b)
    phi_b.add_incoming(blk, phi_a)
    del add
    model = OOOModel()
    assert compile_path(model, (blk,)) is not None
    plan = [(0, (blk,), 5)]
    ref = OOOModel()
    oracle = _bits(ref.simulate([blk] * 5))
    for backend in _backends():
        stats = {}
        got = simulate_paths_vectorized(
            model, plan, backend=backend, stats=stats
        )
        assert _bits(got[0]) == oracle, backend
        assert stats["fallback"] == 0, backend
    del module


def test_vectorized_refuses_memory_model():
    model = OOOModel(memory_system=MemorySystem())
    with pytest.raises(ValueError):
        simulate_paths_vectorized(model, [])


def test_empty_and_zero_rep_lanes(real_plan):
    key, blocks, _ = real_plan[0]
    model = OOOModel()
    ref = OOOModel()
    plan = [("zero", blocks, 0), ("one", blocks, 1)]
    for backend in _backends():
        got = simulate_paths_vectorized(model, plan, backend=backend)
        assert _bits(got["zero"]) == _bits(ref.simulate([]))
        assert _bits(got["one"]) == _bits(ref.simulate(list(blocks)))


# -- tier selection and memoization --------------------------------------------


def test_tier_decision_is_memoized_per_profile(real_plan):
    memo = SimulationMemo()
    model = OOOModel()
    anchor = object()
    d1 = select_lane_tier(
        model, real_plan, memo=memo, anchor=anchor, anchor_extra=("cfg", 2)
    )
    d2 = select_lane_tier(
        model, real_plan, memo=memo, anchor=anchor, anchor_extra=("cfg", 2)
    )
    assert d1 is d2  # same decision object: derived once, reused


def test_compiled_programs_are_memoized(real_plan):
    memo = SimulationMemo()
    model = OOOModel()
    anchor = object()
    t1 = compile_paths(
        model, real_plan, memo=memo, anchor=anchor, anchor_extra=("cfg", 2)
    )
    t2 = compile_paths(
        model, real_plan, memo=memo, anchor=anchor, anchor_extra=("cfg", 2)
    )
    assert t1 is t2


def test_tier_selection_reasons(real_plan, monkeypatch):
    model = OOOModel()
    # a one-lane plan is below the uop floor -> scalar record walk
    small_key, small_blocks, _ = min(
        real_plan, key=lambda t: sum(len(b.instructions) for b in t[1])
    )
    tiny = [(small_key, small_blocks, 1)]
    d = select_lane_tier(model, tiny)
    if d.total_uops < ooo_columns.VECTOR_MIN_UOPS:
        assert d.tier == LANE_TIER_SCALAR
        assert d.reason == "tiny-plan"
        assert d.backend == BACKEND_PYTHON
    # production-suite geometries are narrower than the lockstep
    # threshold -> vector tier on the compiled per-lane Python walk
    d = select_lane_tier(model, real_plan)
    assert d.tier == LANE_TIER_VECTOR
    if get_numpy() is None:
        assert d.reason == "no-numpy"
        assert d.backend == BACKEND_PYTHON
    elif d.effective_lanes < ooo_columns.VECTOR_MIN_EFFECTIVE_LANES:
        assert d.reason == "few-lanes"
        assert d.backend == BACKEND_PYTHON
    # pinned python backend (the no-numpy CI leg) keeps the vector tier
    monkeypatch.setenv(FORCE_PYTHON_ENV, "1")
    d = select_lane_tier(model, real_plan)
    assert d.tier == LANE_TIER_VECTOR
    assert d.backend == BACKEND_PYTHON
    assert d.reason == "no-numpy"
    monkeypatch.delenv(FORCE_PYTHON_ENV)
    # forced scalar pins the pure-Python record walk
    monkeypatch.setenv(LANE_TIER_ENV, LANE_TIER_SCALAR)
    d = select_lane_tier(model, real_plan)
    assert d.tier == LANE_TIER_SCALAR
    assert d.backend == BACKEND_PYTHON
    assert d.reason == "forced-env"


def test_pure_python_backend_matches_numpy_backend(real_plan):
    """Three-way: oracle == numpy walk == pure-Python walk, same bits."""
    if get_numpy() is None:
        pytest.skip("numpy unavailable: the two backends coincide")
    model = OOOModel()
    a = simulate_paths_vectorized(model, real_plan, backend=BACKEND_NUMPY)
    b = simulate_paths_vectorized(model, real_plan, backend=BACKEND_PYTHON)
    for key, _blocks, _reps in real_plan:
        assert _bits(a[key]) == _bits(b[key])
