from repro.analysis import DataflowGraph
from repro.ir import F64, IRBuilder, Module
from repro.sim import DEFAULT_CONFIG, EnergyModel, OOOResult


def _model():
    return EnergyModel(DEFAULT_CONFIG.energy, DEFAULT_CONFIG.cgra)


def test_host_energy_arithmetic():
    e = DEFAULT_CONFIG.energy
    census = OOOResult(
        instructions=10, int_ops=4, fp_ops=2, loads=3, stores=1,
        branches=0, l2_hits=2, dram_accesses=1,
    )
    bd = _model().host_energy(census)
    assert bd.frontend_pj == 10 * e.host_frontend_pj
    assert bd.window_pj == 10 * e.host_window_pj
    assert bd.fu_pj == 4 * e.host_int_op_pj + 2 * e.host_fp_op_pj
    assert bd.memory_pj == (
        4 * e.l1_access_pj + 2 * e.l2_access_pj + 1 * e.dram_access_pj
    )
    assert bd.total_pj == (
        bd.frontend_pj + bd.window_pj + bd.fu_pj + bd.memory_pj
    )


def test_frame_energy_uses_table_v_constants():
    c = DEFAULT_CONFIG.cgra
    bd = _model().frame_energy(
        n_int_ops=10, n_fp_ops=5, n_mem_ops=2, n_edges=20, l2_accesses=2
    )
    assert bd.fu_pj == 10 * c.int_fu_pj + 5 * c.fp_fu_pj
    assert bd.network_pj == 20 * c.network_pj
    assert bd.latch_pj == 17 * c.latch_pj
    assert bd.frontend_pj == 0 and bd.window_pj == 0  # the whole point


def test_frame_energy_from_dfg_counts():
    m = Module()
    g = m.add_global("a", F64, 8)
    fn = m.add_function("f", [("x", F64)], F64)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    addr = b.gep(g, 0, 8)
    v = b.load(F64, addr)
    y = b.fmul(v, fn.arg("x"))
    z = b.fadd(y, 1.0)
    b.store(z, addr)
    b.ret(z)
    insts = [i for i in fn.entry.instructions if not i.is_terminator]
    dfg = DataflowGraph.build(insts)
    bd = _model().frame_energy_from_dfg(dfg)
    c = DEFAULT_CONFIG.cgra
    # 1 gep (int) + 2 fp + 2 mem ops
    assert bd.fu_pj == 1 * c.int_fu_pj + 2 * c.fp_fu_pj
    assert bd.latch_pj == 5 * c.latch_pj
    assert bd.memory_pj == 2 * DEFAULT_CONFIG.energy.l2_access_pj


def test_transfer_energy():
    bd = _model().transfer_energy(7)
    assert bd.transfer_pj == 7 * DEFAULT_CONFIG.energy.transfer_per_value_pj
    assert bd.total_pj == bd.transfer_pj


def test_breakdown_scaled():
    bd = _model().transfer_energy(4).scaled(0.5)
    assert bd.transfer_pj == 2 * DEFAULT_CONFIG.energy.transfer_per_value_pj
