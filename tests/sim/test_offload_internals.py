"""Unit tests for OffloadSimulator internals: per-path costs, baseline
accounting, loop-carried pair derivation and executed-fraction energy."""

from repro.frames import build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.profiling import PathProfiler, rank_paths
from repro.regions import build_braids, path_to_region
from repro.sim import OffloadSimulator

from tests.conftest import build_counted_loop


def _profiled(build, args):
    m, fn = build()
    pp = PathProfiler([fn])
    rec = TraceRecorder([fn])
    Interpreter(m, tracer=MultiTracer(pp, rec)).run(fn.name, args)
    return m, fn, pp.profile_for(fn), rec.traces[fn]


def test_path_costs_cover_every_path():
    m, fn, profile, trace = _profiled(build_counted_loop, [30])
    sim = OffloadSimulator()
    costs = sim.path_costs(profile, host_load_latency=2)
    assert set(costs) == set(profile.counts)
    for pid, cost in costs.items():
        assert cost.cycles > 0
        assert cost.census.instructions > 0


def test_amortisation_reduces_per_execution_cost():
    m, fn, profile, trace = _profiled(build_counted_loop, [30])
    sim = OffloadSimulator()
    hot = max(profile.counts, key=profile.counts.get)
    amortised = sim.path_costs(profile, 2, amortise_reps=8)[hot].cycles
    standalone = sim.path_costs(profile, 2, amortise_reps=1)[hot].cycles
    # overlapped iterations cost less per execution than isolated ones
    assert amortised <= standalone


def test_baseline_is_count_weighted_sum():
    m, fn, profile, trace = _profiled(build_counted_loop, [30])
    sim = OffloadSimulator()
    costs = sim.path_costs(profile, 2)
    cycles, energy = sim.baseline(profile, costs)
    manual = sum(profile.counts[pid] * costs[pid].cycles for pid in costs)
    assert abs(cycles - manual) < 1e-9
    assert energy > 0


def test_loop_carried_pairs_derived_from_back_edge():
    m, fn, profile, trace = _profiled(build_counted_loop, [30])
    ranked = rank_paths(profile)
    frame = build_frame(path_to_region(fn, ranked[0]))
    pairs = OffloadSimulator._loop_carried(frame)
    # i and acc phis both carry
    assert len(pairs) == 2
    for phi, val in pairs:
        assert phi.opcode == "phi"
        assert val is phi.incoming_for(frame.region.blocks[-1])


def test_exec_fraction_scales_braid_energy(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braid = build_braids(fn, rank_paths(pp))[0]
    frame = build_frame(braid.region)
    sim = OffloadSimulator()
    outcome = sim.simulate_offload("anticorr", pp, frame, "oracle")
    # each braid invocation only executes one arm, so the needle energy is
    # strictly below (invocations x whole-frame energy)
    from repro.accel.cgra import CGRAScheduler

    sched = CGRAScheduler(sim.config.cgra).schedule(frame)
    whole = sim.energy_model.frame_energy(
        n_int_ops=sched.int_ops + sched.guard_ops,
        n_fp_ops=sched.fp_ops,
        n_mem_ops=sched.mem_ops,
        n_edges=sched.edges,
        l2_accesses=sched.mem_ops,
    ).total_pj
    assert outcome.needle_energy_pj < outcome.invocations * whole


def test_outcome_properties_zero_division_guards():
    from repro.sim import OffloadOutcome

    o = OffloadOutcome(
        workload="x", strategy="braid",
        baseline_cycles=0, needle_cycles=0,
        baseline_energy_pj=0, needle_energy_pj=0,
    )
    assert o.performance_improvement == 0.0
    assert o.energy_reduction == 0.0
