from repro.frames import build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.ir import Constant, F64, I32, IRBuilder, Module, verify_function
from repro.profiling import PathProfiler, rank_paths
from repro.regions import build_braids, path_to_region
from repro.sim import EnergyBreakdown, EnergyModel, OffloadSimulator, DEFAULT_CONFIG


def _ilp_kernel():
    """A loop body with abundant FP ILP — the shape the CGRA wins on."""
    m = Module()
    src = m.add_global("xs", F64, 256, init=[float(i % 17) for i in range(256)])
    dst = m.add_global("ys", F64, 256)
    fn = m.add_function("ilp", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(I32, "i")
    c = b.icmp("slt", i, fn.arg("n"))
    b.condbr(c, body, exit_)
    b.set_block(body)
    a = b.gep(src, i, 8)
    x = b.load(F64, a)
    # eight independent FP chains
    terms = []
    for k in range(8):
        t = b.fmul(x, 1.0 + k)
        t = b.fadd(t, 0.5 * k)
        t = b.fmul(t, 1.25)
        terms.append(t)
    total = terms[0]
    for t in terms[1:]:
        total = b.fadd(total, t)
    out = b.gep(dst, i, 8)
    b.store(total, out)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i2)
    b.set_block(exit_)
    b.ret(i)
    verify_function(fn)
    return m, fn


def _profile_with_trace(m, fn, args):
    pp = PathProfiler([fn])
    rec = TraceRecorder([fn])
    Interpreter(m, tracer=MultiTracer(pp, rec)).run(fn.name, args)
    return pp.profile_for(fn), rec.traces[fn]


def test_offload_improves_ilp_kernel():
    m, fn = _ilp_kernel()
    pp, trace = _profile_with_trace(m, fn, [200])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    sim = OffloadSimulator()
    outcome = sim.simulate_offload("ilp", pp, frame, "oracle", trace)
    assert outcome.baseline_cycles > 0
    assert outcome.performance_improvement > 0.10
    assert outcome.energy_reduction > 0.10
    assert outcome.failures == 0
    assert outcome.predictor_precision == 1.0


def test_oracle_never_fails(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    sim = OffloadSimulator()
    oracle = sim.simulate_offload("anticorr", pp, frame, "oracle")
    history = sim.simulate_offload("anticorr", pp, frame, "history")
    assert oracle.failures == 0
    assert oracle.predictor_precision == 1.0
    # the history predictor may decline unprofitable invocations, but it can
    # never invoke *more* correctly than the oracle
    assert history.invocations - history.failures <= oracle.invocations


def test_braid_covers_more_than_path(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    path_frame = build_frame(path_to_region(fn, ranked[0]))
    braid = build_braids(fn, ranked)[0]
    braid_frame = build_frame(braid.region)
    sim = OffloadSimulator()
    p = sim.simulate_offload("anticorr", pp, path_frame, "oracle")
    br = sim.simulate_offload("anticorr", pp, braid_frame, "oracle", coverage=braid.coverage)
    # the braid absorbs both alternating paths -> strictly more invocations
    assert br.invocations > p.invocations
    assert br.coverage > p.coverage
    assert br.strategy == "braid"


def test_failed_invocations_cost_cycles(profiled_anticorrelated):
    """Every failure charges the frame + rollback + host re-execution, so a
    run with failures is strictly slower than the same run without them."""
    m, fn, pp, ep = profiled_anticorrelated
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    sim = OffloadSimulator()
    history = sim.simulate_offload("anticorr", pp, frame, "history")
    oracle = sim.simulate_offload("anticorr", pp, frame, "oracle")
    if history.failures:
        # failures always burn at least the frame makespan each
        assert (
            history.needle_cycles
            >= oracle.needle_cycles
            - (oracle.invocations - history.invocations) * frame.op_count
        )
    assert history.failures + (history.invocations - history.failures) == history.invocations


def test_baseline_strategy_consistency():
    m, fn = _ilp_kernel()
    pp, trace = _profile_with_trace(m, fn, [100])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    sim = OffloadSimulator()
    a = sim.simulate_offload("ilp", pp, frame, "oracle", trace)
    b = sim.simulate_offload("ilp", pp, frame, "oracle", trace)
    assert a.baseline_cycles == b.baseline_cycles
    assert a.needle_cycles == b.needle_cycles


def test_energy_breakdown_math():
    e = EnergyBreakdown(frontend_pj=10, fu_pj=5)
    f = EnergyBreakdown(frontend_pj=1, network_pj=2)
    s = e + f
    assert s.frontend_pj == 11 and s.network_pj == 2
    assert s.total_pj == 18
    assert e.scaled(2.0).total_pj == 30


def test_energy_model_host_vs_cgra_per_op():
    model = EnergyModel(DEFAULT_CONFIG.energy, DEFAULT_CONFIG.cgra)
    from repro.sim import OOOResult

    census = OOOResult(instructions=100, int_ops=100)
    host = model.host_energy(census).total_pj
    cgra = model.frame_energy(
        n_int_ops=100, n_fp_ops=0, n_mem_ops=0, n_edges=100
    ).total_pj
    # front-end elision: the CGRA must be cheaper per op
    assert cgra < host


def test_calibrate_defaults():
    sim = OffloadSimulator()
    cal = sim.calibrate(None)
    assert cal.host_load_latency == DEFAULT_CONFIG.memory.l1.latency
    assert cal.accel_load_latency == DEFAULT_CONFIG.memory.l2.latency
    assert cal.host_levels == {} and cal.accel_levels == {}
