import pytest

from repro.sim import (
    CoherenceError,
    EXCLUSIVE,
    INVALID,
    MESIDirectory,
    MODIFIED,
    SHARED,
)


def test_first_read_gets_exclusive():
    d = MESIDirectory(2)
    act = d.read(0, 0x1000)
    assert act.new_state == EXCLUSIVE
    assert d.state(0, 0x1000) == EXCLUSIVE


def test_second_reader_downgrades_to_shared():
    d = MESIDirectory(2)
    d.read(0, 0x1000)
    act = d.read(1, 0x1000)
    assert act.new_state == SHARED
    assert d.state(0, 0x1000) == SHARED
    assert d.state(1, 0x1000) == SHARED


def test_read_from_modified_forces_writeback():
    d = MESIDirectory(2)
    d.write(0, 0x1000)
    act = d.read(1, 0x1000)
    assert act.writeback
    assert act.data_from == "owner"
    assert d.state(0, 0x1000) == SHARED
    assert d.writeback_count == 1


def test_write_invalidates_sharers():
    d = MESIDirectory(3)
    d.read(0, 0x1000)
    d.read(1, 0x1000)
    act = d.write(2, 0x1000)
    assert sorted(act.invalidated) == [0, 1]
    assert d.state(0, 0x1000) == INVALID
    assert d.state(1, 0x1000) == INVALID
    assert d.state(2, 0x1000) == MODIFIED
    assert d.invalidation_count == 2


def test_write_upgrade_from_shared():
    d = MESIDirectory(2)
    d.read(0, 0x1000)
    d.read(1, 0x1000)
    act = d.write(0, 0x1000)
    assert act.invalidated == [1]
    assert d.state(0, 0x1000) == MODIFIED


def test_silent_upgrade_exclusive_to_modified():
    d = MESIDirectory(2)
    d.read(0, 0x1000)
    act = d.write(0, 0x1000)
    assert act.invalidated == []
    assert d.state(0, 0x1000) == MODIFIED


def test_write_hits_in_modified_are_free():
    d = MESIDirectory(2)
    d.write(0, 0x1000)
    act = d.write(0, 0x1000)
    assert act.data_from == "none" and not act.invalidated


def test_evict_modified_is_writeback():
    d = MESIDirectory(2)
    d.write(0, 0x1000)
    assert d.evict(0, 0x1000)
    assert d.state(0, 0x1000) == INVALID
    d.read(0, 0x2000)
    assert not d.evict(0, 0x2000)


def test_lines_are_independent():
    d = MESIDirectory(2)
    d.write(0, 0x1000)
    d.write(1, 0x2000)
    assert d.state(0, 0x1000) == MODIFIED
    assert d.state(1, 0x2000) == MODIFIED


def test_same_line_different_offsets():
    d = MESIDirectory(2, line_bytes=64)
    d.write(0, 0x1000)
    act = d.read(1, 0x1010)  # same 64B line
    assert act.writeback


def test_invariants_hold_over_random_traffic():
    import random

    rng = random.Random(42)
    d = MESIDirectory(4)
    for _ in range(3000):
        agent = rng.randrange(4)
        addr = rng.randrange(16) * 64
        action = rng.random()
        if action < 0.45:
            d.read(agent, addr)
        elif action < 0.9:
            d.write(agent, addr)
        else:
            d.evict(agent, addr)
        d.check_invariants()


def test_zero_agents_rejected():
    with pytest.raises(CoherenceError):
        MESIDirectory(0)
