"""Property tests: RLE trace kernels vs the event-by-event reference.

The perf claim of the run-length kernels is only worth having if the
fast path is *bit-identical* to the reference — same predictor census,
same charge census, same OffloadOutcome floats.  These tests enforce
that equivalence from three angles: pure RLE round-trips, predictor
evaluation over random traces (hypothesis), and full simulator outcomes
on real suite workloads under both kernel modes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.accel.invocation import (
    HistoryPredictor,
    OraclePredictor,
    evaluate_predictor,
    evaluate_predictor_runs,
)
from repro.frames import build_frame
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.profiling import rank_paths
from repro.regions import path_to_region
from repro.sim import (
    KERNELS_EVENTS,
    KERNELS_RLE,
    OffloadSimulator,
    census_from_events,
    census_from_segments,
    run_length_encode,
)

# traces built from runs: long stretches of one path id exercise the
# closed-form tail, short stutters exercise the explicit prefix
run_traces = st.lists(
    st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=25
).map(lambda runs: [pid for pid, n in runs for _ in range(n)])
target_sets = st.sets(st.integers(0, 5))


# -- RLE view ---------------------------------------------------------------


@given(run_traces)
def test_rle_round_trip(trace):
    rle = run_length_encode(trace)
    assert rle.expand() == trace
    assert rle.n_events == len(trace)
    assert rle.n_runs <= rle.n_events
    # runs are maximal: no two adjacent runs share a path id
    for (a, _), (b, _) in zip(rle.runs, rle.runs[1:]):
        assert a != b
    if trace:
        assert 0.0 < rle.rle_ratio <= 1.0
    else:
        assert rle.rle_ratio == 1.0


@given(run_traces)
def test_rle_per_pid_stats(trace):
    stats = run_length_encode(trace).per_pid_run_stats()
    assert sum(events for _, events, _ in stats.values()) == len(trace)
    for pid, (n_runs, n_events, longest) in stats.items():
        assert trace.count(pid) == n_events
        assert 1 <= longest <= n_events
        assert n_runs <= n_events


# -- predictor evaluation: runs vs events ----------------------------------


def _predictors(targets, history_length):
    yield OraclePredictor(targets)
    yield HistoryPredictor(history_length=history_length)
    # a trigger-happy variant that invokes from the initial counter state
    yield HistoryPredictor(
        history_length=history_length, init_counter=3, invoke_threshold=2
    )


@settings(deadline=None)
@given(run_traces, target_sets, st.integers(1, 4))
def test_run_eval_matches_event_eval(trace, targets, history_length):
    for make in range(3):
        events_pred = list(_predictors(targets, history_length))[make]
        runs_pred = list(_predictors(targets, history_length))[make]
        ev = evaluate_predictor(trace, targets, events_pred, history_length)
        run_ev = evaluate_predictor_runs(
            run_length_encode(trace).runs, targets, runs_pred, history_length
        )
        assert run_ev.true_positives == ev.true_positives
        assert run_ev.false_positives == ev.false_positives
        assert run_ev.true_negatives == ev.true_negatives
        assert run_ev.false_negatives == ev.false_negatives
        assert run_ev.precision == ev.precision
        assert run_ev.recall == ev.recall
        # the segments expand to the exact per-event decision stream
        expanded = [
            (pid, invoke)
            for pid, invoke, length in run_ev.segments
            for _ in range(length)
        ]
        assert expanded == list(zip(trace, ev.decisions))
        # and segments are maximal (merged on emit)
        for (p1, i1, _), (p2, i2, _) in zip(run_ev.segments, run_ev.segments[1:]):
            assert (p1, i1) != (p2, i2)


@settings(deadline=None)
@given(run_traces, target_sets, st.booleans(), st.integers(1, 4))
def test_census_kernels_agree(trace, targets, pipelined, history_length):
    ev = evaluate_predictor(
        trace, targets, HistoryPredictor(history_length=history_length),
        history_length,
    )
    run_ev = evaluate_predictor_runs(
        run_length_encode(trace).runs, targets,
        HistoryPredictor(history_length=history_length), history_length,
    )
    slow = census_from_events(trace, ev.decisions, targets, pipelined)
    fast = census_from_segments(run_ev.segments, targets, pipelined)
    assert slow == fast
    # every event lands in exactly one charge class
    total = sum(
        sum(table.values())
        for table in (slow.run_starts, slow.pipelined, slow.failures, slow.host)
    )
    assert total == len(trace)
    assert slow.invocations == ev.invocations


@given(run_traces, target_sets)
def test_census_oracle_never_fails(trace, targets):
    ev = evaluate_predictor(trace, targets, OraclePredictor(targets))
    census = census_from_events(trace, ev.decisions, targets, True)
    assert census.failed == 0
    assert not census.failures


# -- full simulator: kernel modes are bitwise-identical ---------------------


def test_invalid_kernel_mode_rejected():
    with pytest.raises(ValueError):
        OffloadSimulator(trace_kernels="bogus")


def _outcome_bits(outcome):
    return vars(outcome).copy()


def test_kernel_modes_identical_on_fixture(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    rle_sim = OffloadSimulator(trace_kernels=KERNELS_RLE)
    ev_sim = OffloadSimulator(trace_kernels=KERNELS_EVENTS)
    for predictor in ("oracle", "history"):
        a = rle_sim.simulate_offload("anticorr", pp, frame, predictor)
        b = ev_sim.simulate_offload("anticorr", pp, frame, predictor)
        assert _outcome_bits(a) == _outcome_bits(b)


#: structurally diverse suite slice (same rationale as
#: tests/test_parallel_and_cache.py): int + fp, loop-heavy and branchy
SUITE_SLICE = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


def _flatten(ev):
    def fields(outcome):
        return None if outcome is None else vars(outcome).copy()

    return {
        "summary": vars(ev.summary).copy(),
        "path_oracle": fields(ev.path_oracle),
        "path_history": fields(ev.path_history),
        "braid": fields(ev.braid),
        "hls": fields(ev.hls),
        "braid_schedule": fields(ev.braid_schedule),
    }


def _evaluate(names, **option_kwargs):
    pipe = NeedlePipeline(
        options=PipelineOptions(no_cache=True, **option_kwargs)
    )
    return [pipe.evaluate(workloads.get(name)) for name in names]


def test_kernel_modes_identical_across_suite_slice():
    rle = _evaluate(SUITE_SLICE, trace_kernels="rle")
    events = _evaluate(SUITE_SLICE, trace_kernels="events")
    for a, b in zip(rle, events):
        assert _flatten(a) == _flatten(b)
