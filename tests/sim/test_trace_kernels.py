"""Property tests: RLE and array trace kernels vs the event reference.

The perf claim of the run-length and array kernels is only worth having
if the fast paths are *bit-identical* to the reference — same predictor
census, same charge census, same OffloadOutcome floats.  These tests
enforce that equivalence from three angles: pure RLE round-trips,
three-way predictor/census evaluation over random traces (hypothesis,
under both the numpy and the forced pure-Python backend), and full
simulator outcomes on real suite workloads under all three kernel
modes.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import workloads
from repro.accel.invocation import (
    HistoryPredictor,
    OraclePredictor,
    evaluate_predictor,
    evaluate_predictor_runs,
    evaluate_predictor_runs_array,
)
from repro.frames import build_frame
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.profiling import rank_paths
from repro.regions import path_to_region
from repro.sim import (
    ChargeCensus,
    FORCE_PYTHON_ENV,
    KERNELS_ARRAY,
    KERNELS_EVENTS,
    KERNELS_RLE,
    OffloadSimulator,
    census_from_events,
    census_from_segments,
    census_from_segments_array,
    run_length_encode,
    runs_to_columns,
)
from repro.sim.array_kernels import get_numpy


@contextmanager
def _backend(pure: bool):
    """Pin the array-kernel backend; restores the prior env on exit."""
    prev = os.environ.get(FORCE_PYTHON_ENV)
    try:
        if pure:
            os.environ[FORCE_PYTHON_ENV] = "1"
        else:
            os.environ.pop(FORCE_PYTHON_ENV, None)
        yield
    finally:
        if prev is None:
            os.environ.pop(FORCE_PYTHON_ENV, None)
        else:
            os.environ[FORCE_PYTHON_ENV] = prev


#: both backends; without numpy installed the False leg degrades to the
#: pure-Python fallback too, which is exactly what the no-numpy CI job
#: relies on
BACKENDS = (False, True)

# traces built from runs: long stretches of one path id exercise the
# closed-form tail, short stutters exercise the explicit prefix
run_traces = st.lists(
    st.tuples(st.integers(0, 5), st.integers(1, 40)), max_size=25
).map(lambda runs: [pid for pid, n in runs for _ in range(n)])
target_sets = st.sets(st.integers(0, 5))


# -- RLE view ---------------------------------------------------------------


@given(run_traces)
def test_rle_round_trip(trace):
    rle = run_length_encode(trace)
    assert rle.expand() == trace
    assert rle.n_events == len(trace)
    assert rle.n_runs <= rle.n_events
    # runs are maximal: no two adjacent runs share a path id
    for (a, _), (b, _) in zip(rle.runs, rle.runs[1:]):
        assert a != b
    if trace:
        assert 0.0 < rle.rle_ratio <= 1.0
    else:
        assert rle.rle_ratio == 1.0


@given(run_traces)
def test_rle_per_pid_stats(trace):
    stats = run_length_encode(trace).per_pid_run_stats()
    assert sum(events for _, events, _ in stats.values()) == len(trace)
    for pid, (n_runs, n_events, longest) in stats.items():
        assert trace.count(pid) == n_events
        assert 1 <= longest <= n_events
        assert n_runs <= n_events


# -- predictor evaluation: runs vs events ----------------------------------


def _predictors(targets, history_length):
    yield OraclePredictor(targets)
    yield HistoryPredictor(history_length=history_length)
    # a trigger-happy variant that invokes from the initial counter state
    yield HistoryPredictor(
        history_length=history_length, init_counter=3, invoke_threshold=2
    )


@settings(deadline=None)
@given(run_traces, target_sets, st.integers(1, 4))
def test_run_eval_matches_event_eval(trace, targets, history_length):
    for make in range(3):
        events_pred = list(_predictors(targets, history_length))[make]
        runs_pred = list(_predictors(targets, history_length))[make]
        ev = evaluate_predictor(trace, targets, events_pred, history_length)
        run_ev = evaluate_predictor_runs(
            run_length_encode(trace).runs, targets, runs_pred, history_length
        )
        assert run_ev.true_positives == ev.true_positives
        assert run_ev.false_positives == ev.false_positives
        assert run_ev.true_negatives == ev.true_negatives
        assert run_ev.false_negatives == ev.false_negatives
        assert run_ev.precision == ev.precision
        assert run_ev.recall == ev.recall
        # the segments expand to the exact per-event decision stream
        expanded = [
            (pid, invoke)
            for pid, invoke, length in run_ev.segments
            for _ in range(length)
        ]
        assert expanded == list(zip(trace, ev.decisions))
        # and segments are maximal (merged on emit)
        for (p1, i1, _), (p2, i2, _) in zip(run_ev.segments, run_ev.segments[1:]):
            assert (p1, i1) != (p2, i2)


@settings(deadline=None)
@given(run_traces, target_sets, st.booleans(), st.integers(1, 4))
def test_census_kernels_agree(trace, targets, pipelined, history_length):
    ev = evaluate_predictor(
        trace, targets, HistoryPredictor(history_length=history_length),
        history_length,
    )
    run_ev = evaluate_predictor_runs(
        run_length_encode(trace).runs, targets,
        HistoryPredictor(history_length=history_length), history_length,
    )
    slow = census_from_events(trace, ev.decisions, targets, pipelined)
    fast = census_from_segments(run_ev.segments, targets, pipelined)
    assert slow == fast
    # every event lands in exactly one charge class
    total = sum(
        sum(table.values())
        for table in (slow.run_starts, slow.pipelined, slow.failures, slow.host)
    )
    assert total == len(trace)
    assert slow.invocations == ev.invocations


@given(run_traces, target_sets)
def test_census_oracle_never_fails(trace, targets):
    ev = evaluate_predictor(trace, targets, OraclePredictor(targets))
    census = census_from_events(trace, ev.decisions, targets, True)
    assert census.failed == 0
    assert not census.failures


# -- three-way equality: events vs runs vs array, both backends -------------


def _counters(ev):
    return (ev.true_positives, ev.false_positives,
            ev.true_negatives, ev.false_negatives)


@settings(deadline=None)
@given(run_traces, target_sets, st.integers(1, 4), st.sampled_from(BACKENDS))
def test_predictor_replay_three_way(trace, targets, history_length, pure):
    with _backend(pure):
        runs = run_length_encode(trace).runs
        cols = runs_to_columns(runs)
        for make in range(3):
            ev = evaluate_predictor(
                trace, targets,
                list(_predictors(targets, history_length))[make],
                history_length,
            )
            run_ev = evaluate_predictor_runs(
                runs, targets,
                list(_predictors(targets, history_length))[make],
                history_length,
            )
            arr_ev = evaluate_predictor_runs_array(
                runs, targets,
                list(_predictors(targets, history_length))[make],
                history_length, columns=cols,
            )
            assert _counters(run_ev) == _counters(ev)
            assert _counters(arr_ev) == _counters(ev)
            # the array segments expand to the exact decision stream too
            expanded = [
                (pid, bool(invoke))
                for pid, invoke, length in arr_ev.segments
                for _ in range(length)
            ]
            assert expanded == list(zip(trace, ev.decisions))


@settings(deadline=None)
@given(run_traces, target_sets, st.booleans(), st.integers(1, 4),
       st.sampled_from(BACKENDS), st.integers(0, 2))
def test_census_three_way(trace, targets, pipelined, history_length, pure,
                          make):
    with _backend(pure):
        runs = run_length_encode(trace).runs
        ev = evaluate_predictor(
            trace, targets,
            list(_predictors(targets, history_length))[make], history_length,
        )
        arr_ev = evaluate_predictor_runs_array(
            runs, targets,
            list(_predictors(targets, history_length))[make], history_length,
            columns=runs_to_columns(runs),
        )
        slow = census_from_events(trace, ev.decisions, targets, pipelined)
        # array fold through the columnar fast path and through the
        # per-segment conversion path must both match the reference
        with_cols = census_from_segments_array(
            arr_ev.segments, targets, pipelined,
            columns=arr_ev.segment_columns,
        )
        without_cols = census_from_segments_array(
            arr_ev.segments, targets, pipelined
        )
        assert with_cols == slow
        assert without_cols == slow


# -- empty traces and zero-length runs are guarded everywhere ---------------


def test_empty_trace_guards():
    rle = run_length_encode([])
    assert rle.n_runs == 0 and rle.n_events == 0
    assert rle.rle_ratio == 1.0
    assert rle.expand() == []
    assert rle.per_pid_run_stats() == {}


@pytest.mark.parametrize("pure", BACKENDS)
def test_empty_trace_array_kernels(pure):
    with _backend(pure):
        rle = run_length_encode([])
        cols = rle.columns()
        if pure or get_numpy() is None:
            assert cols is None
        for predictor in (OraclePredictor({1}), HistoryPredictor()):
            ev = evaluate_predictor_runs_array(
                rle.runs, {1}, predictor, columns=cols
            )
            assert _counters(ev) == (0, 0, 0, 0)
            assert ev.segments == []
        assert census_from_segments([], {1}, True) == ChargeCensus()
        assert census_from_segments_array([], {1}, True) == ChargeCensus()


@pytest.mark.parametrize("pure", BACKENDS)
def test_zero_length_segments_charge_nothing(pure):
    segs = [(1, True, 0), (2, False, 0)]
    cols = ([1, 2], [True, False], [0, 0])
    with _backend(pure):
        assert census_from_segments(segs, {1}, True) == ChargeCensus()
        assert census_from_segments_array(
            segs, {1}, True, columns=cols
        ) == ChargeCensus()


def test_columns_cache_keyed_by_backend():
    rle = run_length_encode([1, 1, 2, 2, 2, 1])
    with _backend(True):
        assert rle.columns() is None
        assert rle.columns() is None  # cached miss stays a miss
    with _backend(False):
        cols = rle.columns()
        if get_numpy() is None:
            assert cols is None
        else:
            assert cols is rle.columns()  # cache hit returns same object
            pids, lens = cols
            assert pids.tolist() == [1, 2, 1]
            assert lens.tolist() == [2, 3, 1]
    with _backend(True):
        assert rle.columns() is None  # backend flip invalidates


# -- full simulator: kernel modes are bitwise-identical ---------------------


def test_invalid_kernel_mode_rejected():
    with pytest.raises(ValueError):
        OffloadSimulator(trace_kernels="bogus")


def _outcome_bits(outcome):
    return vars(outcome).copy()


@pytest.mark.parametrize("pure", BACKENDS)
def test_kernel_modes_identical_on_fixture(profiled_anticorrelated, pure):
    m, fn, pp, ep = profiled_anticorrelated
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    with _backend(pure):
        rle_sim = OffloadSimulator(trace_kernels=KERNELS_RLE)
        ev_sim = OffloadSimulator(trace_kernels=KERNELS_EVENTS)
        arr_sim = OffloadSimulator(trace_kernels=KERNELS_ARRAY)
        for predictor in ("oracle", "history"):
            a = rle_sim.simulate_offload("anticorr", pp, frame, predictor)
            b = ev_sim.simulate_offload("anticorr", pp, frame, predictor)
            c = arr_sim.simulate_offload("anticorr", pp, frame, predictor)
            assert _outcome_bits(a) == _outcome_bits(b)
            assert _outcome_bits(c) == _outcome_bits(b)


#: structurally diverse suite slice (same rationale as
#: tests/test_parallel_and_cache.py): int + fp, loop-heavy and branchy
SUITE_SLICE = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


def _flatten(ev):
    def fields(outcome):
        return None if outcome is None else vars(outcome).copy()

    return {
        "summary": vars(ev.summary).copy(),
        "path_oracle": fields(ev.path_oracle),
        "path_history": fields(ev.path_history),
        "braid": fields(ev.braid),
        "hls": fields(ev.hls),
        "braid_schedule": fields(ev.braid_schedule),
    }


def _evaluate(names, **option_kwargs):
    pipe = NeedlePipeline(
        options=PipelineOptions(no_cache=True, **option_kwargs)
    )
    return [pipe.evaluate(workloads.get(name)) for name in names]


def test_kernel_modes_identical_across_suite_slice():
    events = _evaluate(SUITE_SLICE, trace_kernels="events")
    rle = _evaluate(SUITE_SLICE, trace_kernels="rle")
    array = _evaluate(SUITE_SLICE, trace_kernels="array")
    with _backend(True):
        array_pure = _evaluate(SUITE_SLICE, trace_kernels="array")
    for ref, a, b, c in zip(events, rle, array, array_pure):
        flat = _flatten(ref)
        assert _flatten(a) == flat
        assert _flatten(b) == flat
        assert _flatten(c) == flat


@pytest.mark.chaos
def test_array_kernels_identical_under_injected_faults():
    # a worker crash on the first attempt forces run_failsafe to retry in
    # a fresh process; the retried array-mode evaluation must still be
    # bitwise-identical to the RLE tier's fault-free rows
    from repro.resilience.faults import SITE_WORKER_CRASH, FaultPlan, FaultSpec
    from repro.resilience.runner import WorkloadFailure

    plan = FaultPlan(seed=13, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="429.mcf", times=-1,
                  attempts=(0,)),
    ))

    def run(mode):
        pipe = NeedlePipeline(options=PipelineOptions(
            no_cache=True, trace_kernels=mode, jobs=2, retries=1,
            fault_plan=plan,
        ))
        return pipe.evaluate_all([workloads.get(n) for n in SUITE_SLICE])

    rle_rows = run("rle")
    arr_rows = run("array")
    for a, b in zip(rle_rows, arr_rows):
        assert not isinstance(a, WorkloadFailure)
        assert not isinstance(b, WorkloadFailure)
        assert _flatten(b) == _flatten(a)


# -- sim.kernel_mode gauge: recomputed and cache-served runs ----------------


@pytest.mark.parametrize("mode,pure", [
    ("rle", False), ("array", False), ("array", True),
])
def test_kernel_mode_gauge_covers_cached_and_recomputed(tmp_path, mode, pure):
    from repro import obs
    from repro.artifacts import ArtifactCache
    from repro.obs import export
    from repro.sim import KERNEL_MODE_LABELS

    name = "dwt53"
    cache_dir = str(tmp_path / "cache")
    with _backend(pure):
        label = KERNEL_MODE_LABELS[mode]
        backend = (
            "numpy" if mode == "array" and not pure and get_numpy() is not None
            else "python"
        )

        def run():
            with obs.scoped() as reg:
                pipe = NeedlePipeline(
                    cache=ArtifactCache(cache_dir),
                    options=PipelineOptions(trace_kernels=mode),
                )
                pipe.evaluate(workloads.get(name))
            return reg

        recomputed = run()
        served = run()

        # second run really was served from the artifact cache
        outcome = served.get("pipeline.cache_outcome")
        assert outcome.value(workload=name, outcome="artifact-cache") == 1

        for reg in (recomputed, served):
            g = reg.get("sim.kernel_mode")
            assert g is not None
            assert g.value(workload=name, mode=label, backend=backend) == 1.0

        # and the gauge renders in the `repro metrics` text surface
        text = export.render_metrics(served)
        assert "sim.kernel_mode" in text
        assert "mode=%s" % label in text
