from repro.interp import Interpreter, TraceRecorder
from repro.ir import I32, F64, IRBuilder, Module, verify_function
from repro.sim import HostConfig, MemorySystem, OOOModel


def _trace_of(m, fn, args):
    rec = TraceRecorder([fn])
    Interpreter(m, tracer=rec).run(fn.name, args)
    return rec.traces[fn]


def _chain_module(n_ops=32, dependent=True):
    """n adds either chained (ILP=1) or independent (ILP=width)."""
    m = Module()
    fn = m.add_function("chain", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    vals = []
    cur = fn.arg("a")
    for i in range(n_ops):
        if dependent:
            cur = b.add(cur, 1)
        else:
            vals.append(b.add(fn.arg("a"), i))
    b.ret(cur if dependent else vals[-1])
    verify_function(fn)
    return m, fn


def test_dependent_chain_is_serial():
    m, fn = _chain_module(64, dependent=True)
    trace = _trace_of(m, fn, [0])
    res = OOOModel().simulate(trace.blocks)
    # a 64-deep add chain takes at least 64 cycles
    assert res.cycles >= 64
    assert res.ipc <= 1.5


def test_independent_ops_reach_issue_width():
    m, fn = _chain_module(256, dependent=False)
    trace = _trace_of(m, fn, [0])
    res = OOOModel().simulate(trace.blocks)
    # 4-wide fetch bounds IPC at 4; parallel adds should get close
    assert res.ipc > 2.5
    assert res.ipc <= 4.0 + 1e-9


def test_fpu_constraint_limits_fp_throughput():
    m = Module()
    fn = m.add_function("fp", [("x", F64)], F64)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    vals = [b.fmul(fn.arg("x"), float(i)) for i in range(64)]
    b.ret(vals[-1])
    verify_function(fn)
    trace = _trace_of(m, fn, [1.0])
    res = OOOModel().simulate(trace.blocks)
    # 2 FPUs: 64 independent fmuls need >= 32 issue cycles
    assert res.cycles >= 32
    assert res.fp_ops == 64


def test_rob_bounds_lookahead():
    # far-apart independent work cannot overlap beyond the ROB window:
    # a long dependent chain followed by independent ops
    m = Module()
    fn = m.add_function("mix", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    cur = fn.arg("a")
    for _ in range(200):
        cur = b.add(cur, 1)
    tail = [b.add(fn.arg("a"), i) for i in range(200)]
    y = b.add(cur, tail[-1])
    b.ret(y)
    verify_function(fn)
    trace = _trace_of(m, fn, [0])
    small = OOOModel(HostConfig(rob_entries=16)).simulate(trace.blocks)
    big = OOOModel(HostConfig(rob_entries=4096)).simulate(trace.blocks)
    assert big.cycles <= small.cycles


def test_loop_trace_counts(counted_loop):
    m, fn = counted_loop
    trace = _trace_of(m, fn, [10])
    res = OOOModel().simulate(trace.blocks)
    assert res.instructions == trace.dynamic_instructions - res.phis
    assert res.branches > 0
    assert res.cycles > 0


def test_memory_stream_latencies(array_sum):
    m, fn = array_sum
    trace = _trace_of(m, fn, [16])
    ms = MemorySystem()
    with_mem = OOOModel(memory_system=ms).simulate(
        trace.blocks, memory_stream=trace.memory
    )
    without = OOOModel().simulate(trace.blocks)
    # cold DRAM misses make the memory-accurate run slower
    assert with_mem.cycles > without.cycles
    assert with_mem.loads == 16
    assert with_mem.dram_accesses >= 1


def test_perfect_disambiguation_load_waits_for_same_addr_store():
    m = Module()
    g = m.add_global("buf", I32, 16)
    fn = m.add_function("st_ld", [("v", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    a0 = b.gep(g, 0, 4)
    b.store(fn.arg("v"), a0)
    ld = b.load(I32, a0)
    b.ret(ld)
    verify_function(fn)
    trace = _trace_of(m, fn, [5])
    res = OOOModel().simulate(trace.blocks, memory_stream=trace.memory)
    # load must wait for the store: cycles reflect the serialisation
    assert res.cycles >= 3


def test_empty_trace():
    res = OOOModel().simulate([])
    assert res.cycles == 0 and res.instructions == 0
    assert res.ipc == 0.0


def test_merge_results(counted_loop):
    m, fn = counted_loop
    trace = _trace_of(m, fn, [10])
    res = OOOModel().simulate(trace.blocks)
    merged = res.merge(res)
    assert merged.cycles == 2 * res.cycles
    assert merged.instructions == 2 * res.instructions


# -- lane batching and the periodic steady-state closure ---------------------

import pytest

from repro.sim import core_ooo
from repro.sim.core_ooo import simulate_path_reps, simulate_paths_batch
from repro.workloads import get as get_workload
from repro.workloads.base import profile_workload


def _bits(res):
    return vars(res).copy()


@pytest.fixture(scope="module")
def real_paths():
    """Decoded block paths of two structurally different workloads."""
    out = []
    for name in ("dwt53", "429.mcf"):
        prof = profile_workload(get_workload(name)).paths
        for pid in prof.counts:
            out.append(tuple(prof.decode(pid)))
    return out


def test_path_reps_matches_explicit_repetition(real_paths):
    # the steady-state closure must be invisible: same OOOResult, bit for
    # bit, whether the remaining reps were walked or extrapolated
    model = OOOModel()
    ref = OOOModel()
    for blocks in real_paths:
        for reps in (1, 2, 4, 7):
            fast = simulate_path_reps(model, blocks, reps)
            slow = ref.simulate(list(blocks) * reps)
            assert _bits(fast) == _bits(slow)


def test_path_reps_zero_reps_and_empty_path():
    model = OOOModel()
    assert _bits(simulate_path_reps(model, (), 3)) == _bits(model.simulate([]))


def test_path_reps_refuses_memory_model():
    m, fn = _chain_module(4)
    trace = _trace_of(m, fn, [1])
    model = OOOModel(memory_system=MemorySystem())
    with pytest.raises(ValueError):
        simulate_path_reps(model, tuple(b for b in trace.blocks if b), 2)


def test_batch_dispatch_matches_scalar_oracle(real_paths, monkeypatch):
    # force the lane-batched tier to actually engage (production geometry
    # often falls back to the scalar tier) and check it against plain
    # repetition lane by lane
    monkeypatch.setattr(core_ooo, "BATCH_MIN_EFFECTIVE_LANES", 0)
    monkeypatch.setattr(core_ooo, "BATCH_MIN_REP_AMORTISATION", 0)
    model = OOOModel()
    ref = OOOModel()
    plan = [
        (i, blocks, reps)
        for i, blocks in enumerate(real_paths[:12])
        for reps in (1, 4)
    ]
    # keys must be unique per lane
    plan = [((i, reps), blocks, reps) for i, (_, blocks, reps) in enumerate(
        (k, b, r) for k, b, r in plan)]
    results = simulate_paths_batch(model, plan)
    for key, blocks, reps in plan:
        assert _bits(results[key]) == _bits(ref.simulate(list(blocks) * reps))
