import pytest

from repro.interp import (
    FuelExhausted,
    Interpreter,
    InterpreterError,
    TraceRecorder,
)
from repro.ir import F64, I32, IRBuilder, Module, verify_function


def test_diamond_semantics(diamond):
    m, fn = diamond
    interp = Interpreter(m)
    assert interp.run("diamond", [1, 5]) == 2  # a<b -> a+1
    assert interp.run("diamond", [5, 1]) == 2  # else -> b*2


def test_counted_loop_sum(counted_loop):
    m, _ = counted_loop
    interp = Interpreter(m)
    # sum of 2*i for i in 0..9 = 90
    assert interp.run("loop", [10]) == 90
    assert interp.run("loop", [0]) == 0


def test_loop_with_branch_semantics(loop_with_branch):
    m, _ = loop_with_branch
    interp = Interpreter(m)

    def model(n):
        acc = 0
        for i in range(n):
            acc += i if i % 3 == 0 else 2 * i
            if acc > 100:
                break
        return acc

    for n in (0, 1, 5, 13, 50):
        assert interp.run("loop_branch", [n]) == model(n)


def test_array_sum(array_sum):
    m, _ = array_sum
    interp = Interpreter(m)
    assert interp.run("array_sum", [16]) == sum(range(16))
    assert interp.run("array_sum", [4]) == 0 + 1 + 2 + 3


def test_global_inputs_can_be_rewritten(array_sum):
    m, _ = array_sum
    interp = Interpreter(m)
    base = interp.address_of("data")
    interp.memory.write_array(base, I32, [5] * 16)
    assert interp.run("array_sum", [16]) == 80


def test_tracer_records_blocks_and_memory(array_sum):
    m, fn = array_sum
    rec = TraceRecorder()
    interp = Interpreter(m, tracer=rec)
    interp.run("array_sum", [4])
    trace = rec.traces[fn]
    assert trace.invocations == 1
    names = [b.name for b in trace.blocks if b is not None]
    assert names[0] == "entry"
    assert names.count("body") == 4
    assert names[-1] == "exit"
    loads = [a for op, a in trace.memory if op == "load"]
    assert len(loads) == 4
    # addresses are consecutive words
    assert loads[1] - loads[0] == 4


def test_trace_invocation_sequences(diamond):
    m, fn = diamond
    rec = TraceRecorder()
    interp = Interpreter(m, tracer=rec)
    interp.run("diamond", [1, 5])
    interp.run("diamond", [5, 1])
    seqs = rec.traces[fn].invocation_sequences()
    assert len(seqs) == 2
    assert [b.name for b in seqs[0]] == ["entry", "then", "merge"]
    assert [b.name for b in seqs[1]] == ["entry", "else", "merge"]


def test_trace_filter():
    m = Module()
    f = m.add_function("f", [], I32)
    b = IRBuilder(f)
    b.set_block(b.add_block("entry"))
    b.ret(1)
    rec = TraceRecorder(functions=[])  # record nothing
    Interpreter(m, tracer=rec).run("f", [])
    assert rec.traces == {}


def test_fuel_exhaustion():
    m = Module()
    fn = m.add_function("spin", [], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    loop = b.add_block("loop")
    b.set_block(entry)
    b.br(loop)
    b.set_block(loop)
    b.br(loop)
    verify_function(fn)
    interp = Interpreter(m, fuel=1000)
    with pytest.raises(FuelExhausted):
        interp.run("spin", [])


def test_division_semantics():
    m = Module()
    fn = m.add_function("divs", [("a", I32), ("b", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    q = b.sdiv(fn.arg("a"), fn.arg("b"))
    r = b.srem(fn.arg("a"), fn.arg("b"))
    out = b.mul(q, 1000)
    out = b.add(out, r)
    b.ret(out)
    interp = Interpreter(m)
    # C semantics: -7/2 = -3 rem -1
    assert interp.run("divs", [-7, 2]) == -3000 - 1
    assert interp.run("divs", [7, -2]) == -3000 + 1
    with pytest.raises(InterpreterError):
        interp.run("divs", [1, 0])


def test_float_ops():
    m = Module()
    fn = m.add_function("fp", [("x", F64)], F64)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    y = b.fmul(fn.arg("x"), 2.0)
    z = b.fadd(y, 1.0)
    s = b.unop("fsqrt", z, F64)
    b.ret(s)
    interp = Interpreter(m)
    assert interp.run("fp", [4.0]) == 3.0


def test_select_and_conversions():
    m = Module()
    fn = m.add_function("conv", [("a", I32)], F64)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    c = b.icmp("sgt", fn.arg("a"), 0)
    s = b.select(c, 10, 20)
    f = b.unop("sitofp", s, F64)
    b.ret(f)
    interp = Interpreter(m)
    assert interp.run("conv", [5]) == 10.0
    assert interp.run("conv", [-5]) == 20.0


def test_call_between_functions():
    m = Module()
    sq = m.add_function("square", [("x", I32)], I32)
    b = IRBuilder(sq)
    b.set_block(b.add_block("entry"))
    b.ret(b.mul(sq.arg("x"), sq.arg("x")))
    main = m.add_function("main", [("v", I32)], I32)
    b2 = IRBuilder(main)
    b2.set_block(b2.add_block("entry"))
    r = b2.call(sq, [main.arg("v")])
    b2.ret(b2.add(r, 1))
    interp = Interpreter(m)
    assert interp.run("main", [6]) == 37


def test_arity_mismatch_raises(diamond):
    m, _ = diamond
    with pytest.raises(InterpreterError):
        Interpreter(m).run("diamond", [1])


def test_alloca_scratch_space():
    m = Module()
    fn = m.add_function("scratch", [("v", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    buf = b.alloca(I32, 4)
    a1 = b.gep(buf, 2, 4)
    b.store(fn.arg("v"), a1)
    ld = b.load(I32, a1)
    b.ret(ld)
    interp = Interpreter(m)
    assert interp.run("scratch", [99]) == 99
