import pytest

from repro.interp import Memory, MemoryError_
from repro.ir import F64, I32, I64


def test_alloc_is_aligned_and_disjoint():
    mem = Memory()
    a = mem.alloc(10)
    b = mem.alloc(10)
    assert a % 8 == 0 and b % 8 == 0
    assert b >= a + 10


def test_read_write_roundtrip():
    mem = Memory()
    addr = mem.alloc(8)
    mem.write(addr, I32, 42)
    assert mem.read(addr, I32) == 42
    mem.write(addr, I32, -7)
    assert mem.read(addr, I32) == -7


def test_unwritten_reads_zero():
    mem = Memory()
    addr = mem.alloc(4)
    assert mem.read(addr, I32) == 0


def test_null_access_rejected():
    mem = Memory()
    with pytest.raises(MemoryError_):
        mem.read(0, I32)
    with pytest.raises(MemoryError_):
        mem.write(0, I32, 1)
    with pytest.raises(MemoryError_):
        mem.write(-8, I32, 1)


def test_size_mismatch_detected():
    mem = Memory()
    addr = mem.alloc(8)
    mem.write(addr, I32, 1)
    with pytest.raises(MemoryError_):
        mem.read(addr, I64)
    with pytest.raises(MemoryError_):
        mem.write(addr, F64, 1.0)


def test_value_wrapping_on_store():
    mem = Memory()
    addr = mem.alloc(4)
    mem.write(addr, I32, 2**31)
    assert mem.read(addr, I32) == -(2**31)


def test_array_helpers():
    mem = Memory()
    base = mem.alloc(40)
    mem.write_array(base, I32, range(10))
    assert mem.read_array(base, I32, 10) == list(range(10))


def test_snapshot_and_diff():
    mem = Memory()
    addr = mem.alloc(8)
    mem.write(addr, I32, 1)
    snap = mem.snapshot()
    mem.write(addr, I32, 2)
    other = mem.alloc(4)
    mem.write(other, I32, 9)
    d = mem.diff(snap)
    assert set(d) == {addr, other}
    assert d[addr] == ((4, 1), (4, 2))
    # restoring makes the diff empty
    mem.write(addr, I32, 1)
    mem.erase(other)
    assert mem.diff(snap) == {}


def test_negative_alloc_rejected():
    with pytest.raises(MemoryError_):
        Memory().alloc(-1)
