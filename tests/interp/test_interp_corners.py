import pytest

from repro.interp import (
    Interpreter,
    InterpreterError,
    MultiTracer,
    TraceRecorder,
    Tracer,
)
from repro.ir import (
    Constant,
    I32,
    IRBuilder,
    Module,
    UndefValue,
)


def test_undef_operand_reads_zero():
    m = Module()
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    x = b.add(UndefValue(I32), 5)
    b.ret(x)
    assert Interpreter(m).run("f", []) == 5


def test_multitracer_fans_out(counted_loop):
    m, fn = counted_loop
    r1 = TraceRecorder([fn])
    r2 = TraceRecorder([fn])

    class Counting(Tracer):
        def __init__(self):
            self.blocks = 0
            self.branches = 0
            self.entries = 0
            self.exits = 0
            self.mems = 0

        def on_block(self, *a):
            self.blocks += 1

        def on_branch(self, *a):
            self.branches += 1

        def on_function_entry(self, *a):
            self.entries += 1

        def on_function_exit(self, *a):
            self.exits += 1

        def on_memory(self, *a):
            self.mems += 1

    c = Counting()
    Interpreter(m, tracer=MultiTracer(r1, r2, c)).run("loop", [5])
    assert r1.traces[fn].dynamic_instructions == r2.traces[fn].dynamic_instructions
    assert c.blocks == len([b for b in r1.traces[fn].blocks if b is not None])
    assert c.entries == 1 and c.exits == 1
    assert c.branches > 0


def test_executed_instruction_accounting(counted_loop):
    m, fn = counted_loop
    interp = Interpreter(m)
    interp.run("loop", [10])
    first = interp.executed_instructions
    interp.run("loop", [10])
    assert interp.executed_instructions == 2 * first


def test_phi_without_incoming_for_pred_raises():
    m = Module()
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    nxt = b.add_block("next")
    b.set_block(entry)
    b.br(nxt)
    b.set_block(nxt)
    phi = b.phi(I32)
    # deliberately give the phi a wrong incoming block
    phi.add_incoming(nxt, Constant(I32, 1))
    b.ret(phi)
    with pytest.raises(InterpreterError, match="no incoming"):
        Interpreter(m).run("f", [])


def test_address_of_unknown_global(array_sum):
    m, _ = array_sum
    interp = Interpreter(m)
    with pytest.raises(KeyError):
        interp.address_of("missing")


def test_global_initializer_materialised(array_sum):
    m, _ = array_sum
    interp = Interpreter(m)
    base = interp.address_of("data")
    assert interp.memory.read_array(base, I32, 4) == [0, 1, 2, 3]
