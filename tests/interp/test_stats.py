from repro.interp import Interpreter, OpMixTracer
from repro.workloads import get


def _mix(name, *args):
    w = get(name)
    module, fn, run_args = w.build()
    tracer = OpMixTracer([fn])
    Interpreter(module, tracer=tracer).run(fn, run_args)
    return tracer.mix_for(fn)


def test_opmix_counts_everything(counted_loop):
    m, fn = counted_loop
    tracer = OpMixTracer([fn])
    Interpreter(m, tracer=tracer).run("loop", [10])
    mix = tracer.mix_for(fn)
    # entry (1) + 11 headers (4 insts w/ phis) + 10 bodies (4) + exit (1)
    assert mix.total == 1 + 11 * 4 + 10 * 4 + 1
    assert mix.opcodes["mul"] == 10
    assert mix.opcodes["condbr"] == 11


def test_shares_partition_unity(counted_loop):
    m, fn = counted_loop
    tracer = OpMixTracer([fn])
    Interpreter(m, tracer=tracer).run("loop", [10])
    mix = tracer.mix_for(fn)
    total = mix.fp_share + mix.memory_share + mix.control_share + mix.int_share
    assert abs(total - 1.0) < 1e-9


def test_fp_workload_is_fp_dominated():
    lbm = _mix("470.lbm")
    gzip = _mix("164.gzip")
    assert lbm.fp_share > 0.3
    assert lbm.fp_share > 3 * gzip.fp_share
    assert gzip.fp_share < 0.1


def test_memory_share_ordering():
    hmmer = _mix("456.hmmer")
    blackscholes = _mix("blackscholes")
    assert hmmer.memory_share > blackscholes.memory_share


def test_top_opcodes(counted_loop):
    m, fn = counted_loop
    tracer = OpMixTracer([fn])
    Interpreter(m, tracer=tracer).run("loop", [10])
    top = tracer.mix_for(fn).top(2)
    assert len(top) == 2
    assert top[0][1] >= top[1][1]


def test_filter_excludes(counted_loop):
    m, fn = counted_loop
    tracer = OpMixTracer([])
    Interpreter(m, tracer=tracer).run("loop", [5])
    assert tracer.mixes == {}
