"""The backend-agnostic pool layer (`repro.exec`).

Locks the tentpole contract of the pool redesign: suite output is
byte-identical on every backend — evaluation records, semantic metrics
and the attribution ledger, healthy or under an injected fault plan —
while warm workers are actually reused, unattributable pool failures
fall back to counted careful-mode reruns, and crash blame names the
workload it charged.
"""

import json
import logging
import os
import threading

import pytest

from repro import obs
from repro.exec import (
    POOL_BACKENDS,
    Pool,
    ProcessPool,
    SerialPool,
    ThreadPool,
    make_pool,
)
from repro.exec import worker as exec_worker
from repro.exec.pools import PoolBroken
from repro.obs import export
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.resilience.faults import SITE_WORKER_CRASH, FaultPlan, FaultSpec
from repro.resilience.runner import FailurePolicy, run_failsafe
from repro.workloads import get
from repro.workloads.base import clear_profile_cache

SUBSET = ["164.gzip", "470.lbm", "dwt53"]

#: fast retry pacing for toy scenarios
FAST = dict(backoff_base=0.01, backoff_cap=0.05)


def _suite(names=SUBSET):
    return [get(n) for n in names]


def _outcome_fields(outcome):
    return None if outcome is None else vars(outcome).copy()


def _flatten(row):
    """Everything an evaluation (or failure record) carries, comparable."""
    if not hasattr(row, "summary"):
        return vars(row).copy()  # WorkloadFailure dataclass
    return {
        "summary": vars(row.summary).copy(),
        "path_oracle": _outcome_fields(row.path_oracle),
        "path_history": _outcome_fields(row.path_history),
        "braid": _outcome_fields(row.braid),
        "hls": _outcome_fields(row.hls),
        "braid_schedule": _outcome_fields(row.braid_schedule),
    }


# -- construction and selection ------------------------------------------------


def test_backend_registry_and_make_pool():
    assert POOL_BACKENDS == ("serial", "process", "thread")
    assert isinstance(make_pool("serial", jobs=1), SerialPool)
    assert isinstance(make_pool("process", jobs=2), ProcessPool)
    assert isinstance(make_pool("thread", jobs=2), ThreadPool)
    for backend in POOL_BACKENDS:
        assert isinstance(make_pool(backend, jobs=2), Pool)
    with pytest.raises(ValueError, match="unknown pool backend"):
        make_pool("fibers", jobs=2)


def test_env_var_steers_backend_selection(monkeypatch):
    monkeypatch.setenv("REPRO_POOL", "thread")
    pipe = NeedlePipeline(options=PipelineOptions(no_cache=True))
    assert pipe._execution_plan(4, 4) == ("thread", 4)
    # an explicit option beats the environment
    pipe = NeedlePipeline(options=PipelineOptions(no_cache=True, pool="process"))
    assert pipe._execution_plan(4, 4) == ("process", 4)


def test_jobs_kwarg_is_deprecated():
    pipe = NeedlePipeline(options=PipelineOptions(no_cache=True))
    with pytest.warns(DeprecationWarning, match="PipelineOptions"):
        rows = pipe.evaluate_all(_suite(["dwt53"]), jobs=1)
    assert rows[0].name == "dwt53"


# -- cross-backend byte-identity -----------------------------------------------


def _sweep(pool, fault_plan=None):
    """(flattened rows, semantic-metrics JSON) for one pooled sweep."""
    clear_profile_cache()
    obs.enable(reset=True)
    opts = PipelineOptions(
        no_cache=True, jobs=2, pool=pool, retries=1, fault_plan=fault_plan,
    )
    rows = NeedlePipeline(options=opts).evaluate_all(_suite())
    semantic = export.semantic_json(None)
    obs.disable()
    obs.registry().clear()
    return [_flatten(r) for r in rows], semantic


def test_evaluations_metrics_and_ledger_identical_across_backends():
    serial_rows, serial_sem = _sweep("serial")
    for backend in ("process", "thread"):
        rows, sem = _sweep(backend)
        assert rows == serial_rows, backend
        # semantic_json embeds the attribution ledger, so this is the
        # metrics *and* ledger byte-identity check in one comparison
        assert sem == serial_sem, backend
    assert json.loads(serial_sem)["ledger"]["entries"]


@pytest.mark.chaos
def test_quarantine_records_identical_across_backends_under_crash_plan():
    plan = FaultPlan(seed=11, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="164.gzip", times=-1),
    ))
    serial_rows, serial_sem = _sweep("serial", fault_plan=plan)
    crashed = serial_rows[0]
    assert (crashed["kind"], crashed["attempts"]) == ("crash", 2)
    assert crashed["error"] == "worker exited with code 13"
    for backend in ("process", "thread"):
        rows, sem = _sweep(backend, fault_plan=plan)
        assert rows == serial_rows, backend
        assert sem == serial_sem, backend


# -- warm worker reuse ---------------------------------------------------------


def _where(item, plan, attempt):
    """Picklable probe: which worker (pid, thread) ran this task?"""
    return (os.getpid(), threading.get_ident(), exec_worker.kind())


@pytest.mark.parametrize("backend,kind", [
    ("serial", "serial"), ("thread", "thread"), ("process", "process"),
])
def test_workers_stay_warm_across_many_tasks(backend, kind):
    rows = run_failsafe(_where, list(range(8)), jobs=2, pool=backend)
    assert len(rows) == 8
    assert {k for _p, _t, k in rows} == {kind}
    workers = {(p, t) for p, t, _k in rows}
    # 8 tasks never see more than the 2 pool workers: nothing respawned,
    # nothing spun up per task
    assert len(workers) <= (1 if backend == "serial" else 2)
    if backend == "process":
        assert os.getpid() not in {p for p, _t, _k in rows}
    else:
        assert {p for p, _t, _k in rows} == {os.getpid()}


# -- careful-mode fallback and blame ------------------------------------------


class _FlakyPool(SerialPool):
    """A backend that breaks once with nothing to blame, then recovers."""

    def __init__(self):
        super().__init__(jobs=1)
        self.broke = False

    def wait(self, timeout=None):
        if not self.broke:
            self.broke = True
            raise PoolBroken("transient backend failure")
        return super().wait(timeout)


def test_unattributable_pool_failure_enters_counted_careful_mode(caplog):
    obs.enable(reset=True)
    with caplog.at_level(logging.WARNING, logger="repro.resilience.runner"):
        rows = run_failsafe(
            lambda item, plan, attempt: "ok:%s" % item, ["a", "b"],
            pool=_FlakyPool(), policy=FailurePolicy(**FAST),
        )
    assert rows == ["ok:a", "ok:b"]  # no task was charged for the break
    entries = obs.registry().get("resilience.careful_mode_entries")
    assert entries is not None
    assert sum(v for _k, v in entries.series()) == 1
    assert any("careful mode" in r.getMessage() for r in caplog.records)
    obs.disable()
    obs.registry().clear()


def _crash_once(item, plan, attempt):
    if item == "b" and attempt == 0:
        exec_worker.crash(11)
    return "ok:%s:%d" % (item, attempt)


def test_crash_blame_log_names_the_workload(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.resilience.runner"):
        rows = run_failsafe(
            _crash_once, ["a", "b"], jobs=2, pool="process",
            policy=FailurePolicy(retries=1, **FAST),
        )
    assert rows == ["ok:a:0", "ok:b:1"]
    blames = [
        r.getMessage() for r in caplog.records
        if "worker crash blamed on workload" in r.getMessage()
    ]
    assert blames and all("'b'" in m for m in blames)
