"""Property test: frame execution is atomic.

For arbitrary live-in values, running the hot-path frame of a store-heavy
kernel either (a) succeeds, or (b) fails a guard and leaves memory
*byte-for-byte* identical to before the invocation.  On success, the memory
effect equals re-running the same region normally.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.frames import FrameExecutor, build_frame
from repro.interp import Interpreter
from repro.ir import Constant, I32, IRBuilder, Module, verify_function
from repro.profiling import rank_paths
from repro.regions import path_to_region
from tests.conftest import profile_function


def _kernel():
    """Loop writing out[i] = in[i] * 3 when in[i] > 0 (else skip iteration
    via a cold block), giving the hot path a guard mid-frame."""
    m = Module()
    src = m.add_global("src", I32, 64, init=[v % 13 - 2 for v in range(64)])
    dst = m.add_global("dst", I32, 64)
    fn = m.add_function("k", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    hot = b.add_block("hot")
    cold = b.add_block("cold")
    latch = b.add_block("latch")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, body, exit_)

    b.set_block(body)
    a_in = b.gep(src, i, 4)
    v = b.load(I32, a_in)
    pos = b.icmp("sgt", v, 0)
    b.condbr(pos, hot, cold)

    b.set_block(hot)
    tripled = b.mul(v, 3)
    a_out = b.gep(dst, i, 4)
    b.store(tripled, a_out)
    b.br(latch)

    b.set_block(cold)
    b.br(latch)

    b.set_block(latch)
    i2 = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(latch, i2)

    b.set_block(exit_)
    b.ret(i)
    verify_function(fn)
    return m, fn


_M, _FN = _kernel()
_PP, _EP = profile_function(_M, _FN, [[64]])
_FRAME = build_frame(path_to_region(_FN, rank_paths(_PP)[0]))


@settings(max_examples=120, deadline=None)
@given(i=st.integers(-4, 80), n=st.integers(0, 64))
def test_frame_atomicity(i, n):
    interp = Interpreter(_M)
    phi_i = _FRAME.region.entry.phis[0]
    snap = interp.memory.snapshot()
    execu = FrameExecutor(interp.memory, interp.global_base)
    result = execu.run(_FRAME, {phi_i: i, _FN.arg("n"): n})
    if not result.success:
        assert interp.memory.diff(snap) == {}
        return
    # success: the hot path ran, i.e. 0 <= i < n and src[i] > 0
    assert 0 <= i < n
    src_base = interp.address_of("src")
    dst_base = interp.address_of("dst")
    src_val = interp.memory.read(src_base + 4 * i, I32)
    assert src_val > 0
    assert interp.memory.read(dst_base + 4 * i, I32) == src_val * 3
    # and nothing else changed
    diff = interp.memory.diff(snap)
    assert set(diff) == {dst_base + 4 * i}
