from repro.frames import FrameExecutor, UndoLog, build_frame
from repro.interp import Interpreter, Memory
from repro.ir import Constant, I32, IRBuilder, Module, verify_function
from repro.profiling import rank_paths
from repro.regions import build_braids, path_to_region
from tests.regions.conftest import profile_function


def _writer_module():
    """Loop body path writes out[i] = i*7 and is invoked per iteration."""
    m = Module()
    g = m.add_global("out", I32, 64)
    fn = m.add_function("writer", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(I32, "i")
    c = b.icmp("slt", i, fn.arg("n"))
    b.condbr(c, body, exit_)
    b.set_block(body)
    addr = b.gep(g, i, 4)
    v = b.mul(i, 7)
    b.store(v, addr)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i2)
    b.set_block(exit_)
    b.ret(i)
    verify_function(fn)
    return m, fn, g


def _hot_loop_path_frame(m, fn, runs):
    pp, ep = profile_function(m, fn, runs)
    ranked = rank_paths(pp)
    region = path_to_region(fn, ranked[0])
    return build_frame(region), pp


def test_frame_success_produces_stores():
    m, fn, g = _writer_module()
    frame, _ = _hot_loop_path_frame(m, fn, [[8]])
    interp = Interpreter(m)
    execu = FrameExecutor(interp.memory, interp.global_base)
    # hot path = header->body; live-in is the φ i
    phi_i = frame.region.entry.phis[0]
    n_arg = fn.arg("n")
    result = execu.run(frame, {phi_i: 3, n_arg: 8})
    assert result.success
    assert result.stores_logged == 1
    base = interp.address_of("out")
    assert interp.memory.read(base + 3 * 4, I32) == 21
    # live-out i2 = 4
    out_vals = list(result.live_outs.values())
    assert 4 in out_vals


def test_frame_guard_failure_rolls_back():
    m, fn, g = _writer_module()
    frame, _ = _hot_loop_path_frame(m, fn, [[8]])
    interp = Interpreter(m)
    base = interp.address_of("out")
    interp.memory.write(base + 3 * 4, I32, 111)
    snap = interp.memory.snapshot()
    execu = FrameExecutor(interp.memory, interp.global_base)
    phi_i = frame.region.entry.phis[0]
    # i = 9 >= n = 8 -> the header guard fails immediately
    result = execu.run(frame, {phi_i: 9, fn.arg("n"): 8})
    assert not result.success
    assert result.failed_guard_block.name == "header"
    assert interp.memory.diff(snap) == {}, "rollback must restore memory exactly"


def test_frame_failure_after_store_restores_old_value():
    """Force a failure after the store to prove undo-log ordering."""
    m = Module()
    g = m.add_global("buf", I32, 8)
    fn = m.add_function("f", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    mid = b.add_block("mid")
    hot = b.add_block("hot")
    cold = b.add_block("cold")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    a0 = b.gep(g, 0, 4)
    b.store(fn.arg("n"), a0)
    c1 = b.icmp("sgt", fn.arg("n"), 0)
    b.condbr(c1, mid, exit_)
    b.set_block(mid)
    a1 = b.gep(g, 1, 4)
    b.store(42, a1)
    c2 = b.icmp("sgt", fn.arg("n"), 10)
    b.condbr(c2, hot, cold)
    b.set_block(hot)
    b.br(exit_)
    b.set_block(cold)
    b.br(exit_)
    b.set_block(exit_)
    b.ret(0)
    verify_function(fn)

    pp, ep = profile_function(m, fn, [[20], [20], [20]])
    region = path_to_region(fn, rank_paths(pp)[0])
    frame = build_frame(region)
    assert "hot" in {blk.name for blk in region.blocks}

    interp = Interpreter(m)
    base = interp.address_of("buf")
    interp.memory.write(base, I32, -1)
    interp.memory.write(base + 4, I32, -2)
    snap = interp.memory.snapshot()
    execu = FrameExecutor(interp.memory, interp.global_base)
    # n = 5: first guard (n>0) holds, second (n>10) fails AFTER two stores
    result = execu.run(frame, {fn.arg("n"): 5})
    assert not result.success
    assert result.failed_guard_block.name == "mid"
    assert interp.memory.diff(snap) == {}
    assert interp.memory.read(base, I32) == -1
    assert interp.memory.read(base + 4, I32) == -2


def test_frame_success_matches_reference_execution():
    m, fn, g = _writer_module()
    frame, _ = _hot_loop_path_frame(m, fn, [[8]])
    # reference: run the whole function
    ref = Interpreter(m)
    ref.run("writer", [6])
    ref_mem = ref.memory.snapshot()

    # frame-by-frame: invoke the body frame for each iteration
    interp = Interpreter(m)
    execu = FrameExecutor(interp.memory, interp.global_base)
    phi_i = frame.region.entry.phis[0]
    # the back-edge value i2 (an 'add') is the live-out feeding the next trip
    i_next = [v for v in frame.live_outs if v.name.startswith("add")][0]
    i_val = 0
    for _ in range(100):
        result = execu.run(frame, {phi_i: i_val, fn.arg("n"): 6})
        if not result.success:
            break
        i_val = result.live_outs[i_next]
    assert i_val == 6
    assert interp.memory.snapshot() == ref_mem


def test_braid_frame_executes_both_flows(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braid = build_braids(fn, rank_paths(pp))[0]
    frame = build_frame(braid.region)
    interp = Interpreter(m)
    execu = FrameExecutor(interp.memory, interp.global_base)
    entry_phis = {p.name: p for p in braid.region.entry.phis}
    n = fn.arg("n")
    # even iteration: path through B1/D2; odd: through B2/D1 — both succeed
    even = execu.run(frame, {entry_phis["i"]: 2, entry_phis["acc"]: 10, n: 40})
    odd = execu.run(frame, {entry_phis["i"]: 3, entry_phis["acc"]: 10, n: 40})
    assert even.success and odd.success
    # even: (10+1)*5 = 55; odd: (10+2)*3 = 36
    assert 55 in even.live_outs.values()
    assert 36 in odd.live_outs.values()


def test_braid_frame_guard_failure(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braid = build_braids(fn, rank_paths(pp))[0]
    frame = build_frame(braid.region)
    interp = Interpreter(m)
    snap = interp.memory.snapshot()
    execu = FrameExecutor(interp.memory, interp.global_base)
    entry_phis = {p.name: p for p in braid.region.entry.phis}
    # i >= n: the loop would exit -> leaving the braid -> guard failure
    result = execu.run(
        frame, {entry_phis["i"]: 50, entry_phis["acc"]: 0, fn.arg("n"): 40}
    )
    assert not result.success
    assert interp.memory.diff(snap) == {}


def test_undo_log_rollback_order():
    mem = Memory()
    addr = mem.alloc(8)
    undo = UndoLog()
    mem.write(addr, I32, 1)
    undo.record(mem, addr)
    mem.write(addr, I32, 2)
    undo.record(mem, addr)
    mem.write(addr, I32, 3)
    undo.rollback(mem)
    assert mem.read(addr, I32) == 1
    assert len(undo) == 0


def test_undo_log_erases_fresh_cells():
    mem = Memory()
    addr = mem.alloc(8)
    undo = UndoLog()
    undo.record(mem, addr)  # old value: unmapped
    mem.write(addr, I32, 5)
    undo.rollback(mem)
    assert mem.read_raw(addr) is None


def test_missing_live_in_raises():
    import pytest

    from repro.frames import FrameExecutionError

    m, fn, g = _writer_module()
    frame, _ = _hot_loop_path_frame(m, fn, [[8]])
    interp = Interpreter(m)
    execu = FrameExecutor(interp.memory, interp.global_base)
    with pytest.raises(FrameExecutionError):
        execu.run(frame, {})
