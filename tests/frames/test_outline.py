"""Outlined IR frames vs FrameExecutor: two independent implementations of
the frame semantics must agree on results, failure codes and memory state."""

from repro.frames import FrameExecutor, build_frame
from repro.frames.outline import outline_frame
from repro.interp import Interpreter
from repro.ir import I32, IRBuilder, Module, verify_function
from repro.profiling import rank_paths
from repro.regions import build_braids, path_to_region
from tests.conftest import profile_function
from tests.frames.test_frame_executor import _writer_module


def _outlined_writer():
    m, fn, g = _writer_module()
    pp, ep = profile_function(m, fn, [[8]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    outlined = outline_frame(frame, m)
    return m, fn, frame, outlined


def test_outline_structure():
    m, fn, frame, outlined = _outlined_writer()
    verify_function(outlined.function)
    assert outlined.function.return_type is I32
    assert outlined.n_args == len(frame.live_ins)
    assert outlined.function.name in m.functions
    # undo globals were created for the i32 stores
    assert any("undo_val" in g for g in m.globals)


def test_outline_success_matches_executor():
    m, fn, frame, outlined = _outlined_writer()
    phi_i = frame.region.entry.phis[0]
    n_arg = fn.arg("n")

    # run the outlined function
    interp_a = Interpreter(m)
    code = interp_a.run(outlined.function, outlined.args_from({phi_i: 3, n_arg: 8}))
    assert code == 0
    base = interp_a.address_of("out")
    assert interp_a.memory.read(base + 12, I32) == 21

    # run the executor
    interp_b = Interpreter(m)
    execu = FrameExecutor(interp_b.memory, interp_b.global_base)
    res = execu.run(frame, {phi_i: 3, n_arg: 8})
    assert res.success
    assert interp_b.memory.read(interp_b.address_of("out") + 12, I32) == 21

    # live-outs agree
    out_base = interp_a.global_base[outlined.out_buffer]
    for live, slot in outlined.out_slot.items():
        got = interp_a.memory.read(out_base + 8 * slot, live.type)
        assert got == res.live_outs[live]


def test_outline_failure_returns_guard_code_and_rolls_back():
    m, fn, frame, outlined = _outlined_writer()
    phi_i = frame.region.entry.phis[0]
    interp = Interpreter(m)
    base = interp.address_of("out")
    interp.memory.write(base + 12, I32, 777)
    # i = 9 >= n = 8: the header guard fails
    code = interp.run(outlined.function, outlined.args_from({phi_i: 9, fn.arg("n"): 8}))
    assert code >= 1
    assert interp.memory.read(base + 12, I32) == 777  # untouched / restored


def test_outline_failure_after_store_restores_value():
    """Force the guard to fail after a store so the IR rollback loop runs."""
    m = Module()
    g = m.add_global("buf", I32, 8)
    fn = m.add_function("f", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    mid = b.add_block("mid")
    hot = b.add_block("hot")
    cold = b.add_block("cold")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    a0 = b.gep(g, 0, 4)
    b.store(fn.arg("n"), a0)
    c1 = b.icmp("sgt", fn.arg("n"), 0)
    b.condbr(c1, mid, exit_)
    b.set_block(mid)
    a1 = b.gep(g, 1, 4)
    b.store(42, a1)
    c2 = b.icmp("sgt", fn.arg("n"), 10)
    b.condbr(c2, hot, cold)
    b.set_block(hot)
    b.br(exit_)
    b.set_block(cold)
    b.br(exit_)
    b.set_block(exit_)
    b.ret(0)
    verify_function(fn)

    pp, ep = profile_function(m, fn, [[20], [20]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    outlined = outline_frame(frame, m)

    interp = Interpreter(m)
    base = interp.address_of("buf")
    interp.memory.write(base, I32, -1)
    interp.memory.write(base + 4, I32, -2)
    # n = 5: first guard passes, second fails after two logged stores
    code = interp.run(outlined.function, outlined.args_from({fn.arg("n"): 5}))
    assert code == 2  # the second guard
    assert interp.memory.read(base, I32) == -1
    assert interp.memory.read(base + 4, I32) == -2


def test_outline_braid_executes_both_flows(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braid = build_braids(fn, rank_paths(pp))[0]
    frame = build_frame(braid.region)
    outlined = outline_frame(frame, m)
    verify_function(outlined.function)

    entry_phis = {p.name: p for p in braid.region.entry.phis}
    interp = Interpreter(m)
    out_base = interp.global_base[outlined.out_buffer]

    # even iteration -> B1/D2; odd -> B2/D1 (see conftest); both succeed
    for i_val, expected in ((2, 55), (3, 36)):
        code = interp.run(
            outlined.function,
            outlined.args_from(
                {entry_phis["i"]: i_val, entry_phis["acc"]: 10, fn.arg("n"): 40}
            ),
        )
        assert code == 0
        values = [
            interp.memory.read(out_base + 8 * s, live.type)
            for live, s in outlined.out_slot.items()
        ]
        assert expected in values


def test_outline_braid_guard_failure(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braid = build_braids(fn, rank_paths(pp))[0]
    frame = build_frame(braid.region)
    outlined = outline_frame(frame, m)
    entry_phis = {p.name: p for p in braid.region.entry.phis}
    interp = Interpreter(m)
    code = interp.run(
        outlined.function,
        outlined.args_from(
            {entry_phis["i"]: 99, entry_phis["acc"]: 0, fn.arg("n"): 40}
        ),
    )
    assert code >= 1


def test_outline_differential_vs_executor():
    """Sweep inputs: the outlined function and FrameExecutor agree on
    success/failure and on the out-array contents afterwards."""
    m, fn, frame, outlined = _outlined_writer()
    phi_i = frame.region.entry.phis[0]
    n_arg = fn.arg("n")
    for i_val in range(-2, 12):
        ia = Interpreter(m)
        code = ia.run(outlined.function, outlined.args_from({phi_i: i_val, n_arg: 8}))
        ib = Interpreter(m)
        res = FrameExecutor(ib.memory, ib.global_base).run(
            frame, {phi_i: i_val, n_arg: 8}
        )
        assert (code == 0) == res.success, "i=%d" % i_val
        base_a, base_b = ia.address_of("out"), ib.address_of("out")
        for k in range(16):
            assert ia.memory.read(base_a + 4 * k, I32) == ib.memory.read(
                base_b + 4 * k, I32
            ), "i=%d slot=%d" % (i_val, k)


def test_outlined_function_roundtrips_through_text():
    from repro.ir import format_module, parse_module, verify_module

    m, fn, frame, outlined = _outlined_writer()
    text = format_module(m)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert outlined.function.name in reparsed.functions
