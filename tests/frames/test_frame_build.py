import pytest

from repro.profiling import rank_paths
from repro.regions import build_braids, path_to_region
from repro.frames import Frame, FrameBuildError, build_frame
from tests.regions.conftest import profile_function


def _hot_path_frame(profiled):
    m, fn, pp, ep = profiled
    ranked = rank_paths(pp)
    region = path_to_region(fn, ranked[0])
    return m, fn, pp, build_frame(region)


def test_path_frame_basic(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    assert frame.op_count > 0
    assert frame.guard_count >= 1
    assert frame.psis == []  # pure paths never need ψ selects
    assert frame.cancelled_phis >= 1  # latch acc.next φ cancels


def test_path_frame_guards_point_along_path(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    order = frame.region.blocks
    for g in frame.guards:
        assert g.block in frame.region
        assert g.block is not order[-1]
        for stay in g.stay_targets:
            assert stay in frame.region


def test_exit_block_branch_is_not_a_guard(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    exit_block = frame.region.blocks[-1]
    assert all(g.block is not exit_block for g in frame.guards)


def test_entry_phis_become_live_ins(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    entry_phis = frame.region.entry.phis
    for phi in entry_phis:
        assert frame.phi_resolution[phi] == "live-in"
        assert phi in frame.live_ins


def test_undo_ops_accompany_stores(array_sum):
    m, fn = array_sum
    pp, ep = profile_function(m, fn, [[16]])
    ranked = rank_paths(pp)
    region = path_to_region(fn, ranked[0])
    frame = build_frame(region)
    # array_sum's hot path has loads but no stores
    assert frame.store_count == region.memory_op_count - sum(
        1 for b in region.blocks for i in b.instructions if i.opcode == "load"
    )
    assert frame.undo_log_ops == frame.store_count


def test_store_frame_has_undo_ops():
    from repro.ir import Constant, I32, IRBuilder, Module, verify_function

    m = Module()
    g = m.add_global("out", I32, 64)
    fn = m.add_function("writer", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(I32, "i")
    c = b.icmp("slt", i, fn.arg("n"))
    b.condbr(c, body, exit_)
    b.set_block(body)
    addr = b.gep(g, i, 4)
    v = b.mul(i, 7)
    b.store(v, addr)
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i2)
    b.set_block(exit_)
    b.ret(i)
    verify_function(fn)

    pp, ep = profile_function(m, fn, [[8]])
    region = path_to_region(fn, rank_paths(pp)[0])
    frame = build_frame(region)
    assert frame.store_count == 1
    assert frame.undo_log_ops == 1
    assert frame.op_count == frame.compute_op_count + frame.guard_count + 1


def test_braid_frame_psis(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braids = build_braids(fn, rank_paths(pp))
    frame = build_frame(braids[0].region)
    # the two merge φs (mid, out) become ψ selects with diamond predicates
    assert len(frame.psis) == 2
    for psi in frame.psis:
        assert psi.predicate is not None
        assert len(psi.options) == 2


def test_braid_frame_guard_vs_if(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braids = build_braids(fn, rank_paths(pp))
    frame = build_frame(braids[0].region)
    # P and C branches are internal IFs, not guards
    guard_blocks = {g.block.name for g in frame.guards}
    assert "P" not in guard_blocks and "C" not in guard_blocks


def test_hoisted_op_count(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    assert 0 <= frame.hoisted_op_count < frame.op_count
    if frame.guards:
        first = min(g.position for g in frame.guards)
        after = len(frame.ops) - first - 1
        assert frame.hoisted_op_count <= after


def test_speculative_dfg(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    dfg = frame.speculative_dfg()
    assert len(dfg) == sum(1 for o in frame.ops if o.kind == "op")
    assert dfg.critical_path_length() >= 1


def test_empty_region_rejected(diamond):
    from repro.regions import Region

    _, fn = diamond
    region = Region(
        kind="bl-path", function=fn, blocks=[], entry=None, exit=None
    )
    with pytest.raises(FrameBuildError):
        build_frame(region)


def test_frame_live_values_against_region(profiled_loop_with_branch):
    m, fn, pp, frame = _hot_path_frame(profiled_loop_with_branch)
    # every live-out is defined inside the region
    defined = {
        i
        for b in frame.region.blocks
        for i in b.instructions
        if not i.type.is_void
    }
    for v in frame.live_outs:
        assert v in defined
    # no live-in is defined inside the region... except entry φs, which the
    # host materialises at invocation time
    entry_phis = set(frame.region.entry.phis)
    for v in frame.live_ins:
        assert v not in (defined - entry_phis)
