from repro.interp import Interpreter, MultiTracer
from repro.profiling import (
    EdgeProfiler,
    PathProfiler,
    PathTraceAnalysis,
    compare_frequency_vs_sampling,
    count_ops,
    function_weight,
    latency_weight,
    path_overlap_count,
    rank_paths,
    sample_path_profile,
    top_k_coverage,
)


def _profile(m, fn, runs):
    pp = PathProfiler([fn])
    ep = EdgeProfiler([fn])
    interp = Interpreter(m, tracer=MultiTracer(pp, ep))
    for args in runs:
        interp.run(fn.name, args)
    return pp.profile_for(fn), ep.profile_for(fn)


def test_edge_profile_counts(diamond):
    m, fn = diamond
    _, ep = _profile(m, fn, [[1, 5]] * 3 + [[9, 1]])
    entry = fn.get_block("entry")
    then = fn.get_block("then")
    els = fn.get_block("else")
    assert ep.edge_count(entry, then) == 3
    assert ep.edge_count(entry, els) == 1
    assert ep.block_counts[entry] == 4
    assert ep.branch_bias(entry) == 0.75
    assert ep.hottest_successor(entry) is then


def test_branch_bias_none_for_unexecuted(diamond):
    m, fn = diamond
    _, ep = _profile(m, fn, [])
    assert ep.branch_bias(fn.get_block("entry")) is None
    assert ep.branch_biases() == []
    assert ep.bias_distribution() == {}
    assert ep.fraction_unbiased() == 0.0


def test_bias_distribution_sums_to_one(loop_with_branch):
    m, fn = loop_with_branch
    _, ep = _profile(m, fn, [[n] for n in (5, 13, 50)])
    dist = ep.bias_distribution()
    assert abs(sum(dist.values()) - 1.0) < 1e-9
    assert 0.0 <= ep.fraction_unbiased() <= 1.0


def test_rank_paths_ordering_and_coverage(loop_with_branch):
    m, fn = loop_with_branch
    pp, _ = _profile(m, fn, [[n] for n in (5, 13, 50, 50, 50)])
    ranked = rank_paths(pp)
    weights = [p.weight for p in ranked]
    assert weights == sorted(weights, reverse=True)
    assert abs(sum(p.coverage for p in ranked) - 1.0) < 1e-9
    top = ranked[0]
    assert top.ops == count_ops(top.blocks)
    assert top.weight == top.freq * top.ops
    assert top.entry_block is top.blocks[0]
    assert top.exit_block is top.blocks[-1]
    assert top.branch_count >= 1


def test_rank_paths_limit(loop_with_branch):
    m, fn = loop_with_branch
    pp, _ = _profile(m, fn, [[n] for n in (5, 13, 50)])
    assert len(rank_paths(pp, limit=1)) == 1
    full = rank_paths(pp)
    # limit does not change coverage values (still normalised by full Fwt)
    assert rank_paths(pp, limit=1)[0].coverage == full[0].coverage


def test_function_weight_equals_dynamic_ops(counted_loop):
    m, fn = counted_loop
    pp, _ = _profile(m, fn, [[10]])
    fwt = function_weight(pp)
    # dynamic non-phi instructions of the whole run
    from repro.interp import TraceRecorder

    rec = TraceRecorder([fn])
    Interpreter(m, tracer=rec).run("loop", [10])
    dyn = sum(
        1
        for blk in rec.traces[fn].blocks
        if blk is not None
        for i in blk.instructions
        if i.opcode != "phi"
    )
    assert fwt == dyn


def test_top_k_coverage_monotone(loop_with_branch):
    m, fn = loop_with_branch
    pp, _ = _profile(m, fn, [[n] for n in (5, 13, 50)])
    cov = top_k_coverage(pp, 5)
    assert all(cov[i] >= cov[i + 1] for i in range(len(cov) - 1))
    assert sum(cov) <= 1.0 + 1e-9


def test_path_overlap_count(loop_with_branch):
    m, fn = loop_with_branch
    pp, _ = _profile(m, fn, [[n] for n in (5, 13, 50)])
    ranked = rank_paths(pp)
    ov = path_overlap_count(ranked)
    assert ov >= 1.0


def test_latency_weight_at_least_count(loop_with_branch):
    m, fn = loop_with_branch
    pp, _ = _profile(m, fn, [[13]])
    for p in rank_paths(pp):
        assert latency_weight(p.blocks) >= count_ops(p.blocks)


def test_path_trace_analysis_successors(counted_loop):
    m, fn = counted_loop
    pp, _ = _profile(m, fn, [[10]])
    analysis = PathTraceAnalysis(pp.trace)
    # the body path repeats itself 9 times then exits
    body_pid = pp.trace[1]
    stats = analysis.successor_stats(body_pid)
    assert stats.repeats_itself
    assert stats.bias > 0.8
    assert analysis.sequence_bias_bucket(body_pid) in ("70-90%", "90-100%")
    assert analysis.average_run_length(body_pid) >= 9


def test_path_trace_no_successors():
    analysis = PathTraceAnalysis([7])
    stats = analysis.successor_stats(7)
    assert stats.total == 0 and stats.best_successor is None
    assert stats.bias == 0.0
    assert analysis.sequence_bias_bucket(7) == "<70%"
    assert analysis.successors_of(7) == []


def test_sampling_comparison(counted_loop):
    m, fn = counted_loop
    pp, _ = _profile(m, fn, [[200]])
    samples = sample_path_profile(pp, sample_period=13)
    assert sum(samples.values()) > 0
    cmp = compare_frequency_vs_sampling(pp, sample_period=13)
    assert 0.0 <= cmp.frequency_weight <= 1.0
    assert 0.0 <= cmp.sampling_weight <= 1.0
    assert abs(cmp.relative_change) < 1.0


def test_sampling_empty_profile(diamond):
    m, fn = diamond
    pp, _ = _profile(m, fn, [])
    cmp = compare_frequency_vs_sampling(pp)
    assert cmp.frequency_weight == 0.0 and cmp.sampling_weight == 0.0
    assert cmp.relative_change == 0.0
