import pytest

from repro.interp import Interpreter
from repro.profiling import BallLarusNumbering, PathNumberingError, PathProfiler


def test_total_paths_diamond(diamond):
    _, fn = diamond
    bl = BallLarusNumbering(fn)
    # two acyclic paths: entry->then->merge, entry->else->merge
    assert bl.total_paths == 2


def test_total_paths_counted_loop(counted_loop):
    _, fn = counted_loop
    bl = BallLarusNumbering(fn)
    # entry->header->exit, entry->header->body (ends at back edge),
    # header->exit (fake entry), header->body (fake entry)
    assert bl.total_paths == 4


def test_decode_yields_block_sequences(diamond):
    _, fn = diamond
    bl = BallLarusNumbering(fn)
    decoded = {tuple(b.name for b in bl.decode(i)) for i in range(bl.total_paths)}
    assert decoded == {
        ("entry", "then", "merge"),
        ("entry", "else", "merge"),
    }


def test_decode_ids_unique(loop_with_branch):
    _, fn = loop_with_branch
    bl = BallLarusNumbering(fn)
    seqs = [tuple(b.name for b in bl.decode(i)) for i in range(bl.total_paths)]
    assert len(seqs) == len(set(seqs)), "path ids must decode to distinct paths"


def test_encode_decode_roundtrip_all_ids(loop_with_branch):
    _, fn = loop_with_branch
    bl = BallLarusNumbering(fn)
    for pid in range(bl.total_paths):
        assert bl.encode(bl.decode(pid)) == pid


def test_decode_out_of_range(diamond):
    _, fn = diamond
    bl = BallLarusNumbering(fn)
    with pytest.raises(PathNumberingError):
        bl.decode(bl.total_paths)
    with pytest.raises(PathNumberingError):
        bl.decode(-1)


def test_encode_empty_rejected(diamond):
    _, fn = diamond
    bl = BallLarusNumbering(fn)
    with pytest.raises(PathNumberingError):
        bl.encode([])


def test_back_edge_queries(counted_loop):
    _, fn = counted_loop
    bl = BallLarusNumbering(fn)
    header = fn.get_block("header")
    body = fn.get_block("body")
    assert bl.is_back_edge(body, header)
    assert not bl.is_back_edge(header, body)
    # fake-edge values exist
    bl.back_edge_counter_value(body)
    bl.back_edge_reset_value(header)


def test_path_instruction_count_excludes_phis(counted_loop):
    _, fn = counted_loop
    bl = BallLarusNumbering(fn)
    for pid in range(bl.total_paths):
        blocks = bl.decode(pid)
        raw = sum(len(b.instructions) for b in blocks)
        no_phi = bl.path_instruction_count(pid)
        with_phi = bl.path_instruction_count(pid, include_phis=True)
        assert with_phi == raw
        assert no_phi <= raw


def test_profile_counts_match_execution(counted_loop):
    m, fn = counted_loop
    profiler = PathProfiler([fn])
    interp = Interpreter(m, tracer=profiler)
    interp.run("loop", [10])
    profile = profiler.profiles[fn]
    # 10 body iterations + 1 exit = 11 path executions
    assert profile.total_executions == 11
    # decode sanity: every counted id decodes
    for pid in profile.counts:
        profile.decode(pid)


def test_profile_trace_order(counted_loop):
    m, fn = counted_loop
    profiler = PathProfiler([fn])
    Interpreter(m, tracer=profiler).run("loop", [3])
    profile = profiler.profiles[fn]
    assert len(profile.trace) == 4
    # the first path includes entry; later ones start at the header
    first_blocks = [b.name for b in profile.decode(profile.trace[0])]
    assert first_blocks[0] == "entry"
    later_blocks = [b.name for b in profile.decode(profile.trace[1])]
    assert later_blocks[0] == "header"


def test_profile_diamond_distinguishes_sides(diamond):
    m, fn = diamond
    profiler = PathProfiler([fn])
    interp = Interpreter(m, tracer=profiler)
    for a, b in [(1, 5), (1, 5), (9, 2)]:
        interp.run("diamond", [a, b])
    profile = profiler.profiles[fn]
    assert profile.executed_paths == 2
    counts = sorted(profile.counts.values())
    assert counts == [1, 2]
    # the hot path goes through 'then'
    hot = max(profile.counts, key=profile.counts.get)
    assert "then" in [blk.name for blk in profile.decode(hot)]


def test_profiler_handles_nested_calls():
    from repro.ir import I32, IRBuilder, Module, verify_function

    m = Module()
    inner = m.add_function("inner", [("x", I32)], I32)
    bi = IRBuilder(inner)
    bi.set_block(bi.add_block("entry"))
    bi.ret(bi.add(inner.arg("x"), 1))

    outer = m.add_function("outer", [("x", I32)], I32)
    bo = IRBuilder(outer)
    bo.set_block(bo.add_block("entry"))
    r = bo.call(inner, [outer.arg("x")])
    bo.ret(bo.mul(r, 2))
    verify_function(inner)
    verify_function(outer)

    profiler = PathProfiler()  # trace all functions
    Interpreter(m, tracer=profiler).run("outer", [5])
    assert profiler.profiles[inner].total_executions == 1
    assert profiler.profiles[outer].total_executions == 1


def test_executed_paths_observed_subset_of_static(loop_with_branch):
    m, fn = loop_with_branch
    profiler = PathProfiler([fn])
    interp = Interpreter(m, tracer=profiler)
    for n in (0, 1, 5, 13, 50):
        interp.run("loop_branch", [n])
    profile = profiler.profiles[fn]
    bl = profile.numbering
    assert 0 < profile.executed_paths <= bl.total_paths
    # every observed path is a contiguous walk of real CFG edges
    for pid in profile.counts:
        blocks = profile.decode(pid)
        for a, b in zip(blocks, blocks[1:]):
            assert b in a.successors
