"""Property-based tests: BL numbering over randomly generated reducible CFGs.

Strategy: build a random structured function from nested constructs
(sequence, if/else, while-loop) so the CFG is always reducible, then check
the core BL invariants: ids are compact, decode/encode is a bijection, every
decoded path is a real CFG walk, and profiling a run yields ids whose
decoded paths concatenate back to the executed block sequence.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.interp import Interpreter, TraceRecorder
from repro.ir import Constant, I32, IRBuilder, Module, verify_function
from repro.profiling import BallLarusNumbering, PathProfiler


class _RandomFunctionBuilder:
    """Builds a random structured function from a shape seed."""

    def __init__(self, shapes, rng_values):
        self.shapes = list(shapes)
        self.values = list(rng_values)

    def _next_shape(self):
        return self.shapes.pop() if self.shapes else 0

    def _next_value(self):
        return self.values.pop() if self.values else 1

    def build(self):
        m = Module("random")
        fn = m.add_function("f", [("a", I32), ("b", I32)], I32)
        b = IRBuilder(fn)
        entry = b.add_block("entry")
        b.set_block(entry)
        acc = b.add(fn.arg("a"), 0, name="acc0")
        acc = self._emit_region(fn, b, acc, depth=0)
        b.ret(acc)
        verify_function(fn)
        return m, fn

    def _emit_region(self, fn, b, acc, depth):
        n_stmts = 1 + self._next_shape() % 3
        for _ in range(n_stmts):
            kind = self._next_shape() % 4
            if depth >= 3:
                kind = 0
            if kind <= 1:
                acc = b.add(acc, self._next_value() % 7 + 1)
            elif kind == 2:
                acc = self._emit_if(fn, b, acc, depth)
            else:
                acc = self._emit_loop(fn, b, acc, depth)
        return acc

    def _emit_if(self, fn, b, acc, depth):
        then = b.add_block("then")
        els = b.add_block("else")
        merge = b.add_block("merge")
        cond = b.icmp("slt", acc, self._next_value() % 100)
        b.condbr(cond, then, els)

        b.set_block(then)
        t_val = self._emit_region(fn, b, acc, depth + 1)
        t_end = b.block
        b.br(merge)

        b.set_block(els)
        e_val = b.mul(acc, 2)
        e_end = b.block
        b.br(merge)

        b.set_block(merge)
        phi = b.phi(I32)
        phi.add_incoming(t_end, t_val)
        phi.add_incoming(e_end, e_val)
        return phi

    def _emit_loop(self, fn, b, acc, depth):
        pre = b.block
        header = b.add_block("header")
        body = b.add_block("body")
        exit_ = b.add_block("exit")
        trip = self._next_value() % 4 + 1
        b.br(header)

        b.set_block(header)
        i = b.phi(I32, "i")
        a = b.phi(I32, "a")
        cond = b.icmp("slt", i, trip)
        b.condbr(cond, body, exit_)

        b.set_block(body)
        new_acc = self._emit_region(fn, b, a, depth + 1)
        body_end = b.block
        i_next = b.add(i, 1)
        b.br(header)

        i.add_incoming(pre, Constant(I32, 0))
        i.add_incoming(body_end, i_next)
        a.add_incoming(pre, acc)
        a.add_incoming(body_end, new_acc)

        b.set_block(exit_)
        return a


shapes_strategy = st.lists(st.integers(0, 3), min_size=1, max_size=24)
values_strategy = st.lists(st.integers(0, 99), min_size=1, max_size=24)


@settings(max_examples=40, deadline=None)
@given(shapes=shapes_strategy, values=values_strategy)
def test_decode_encode_bijection(shapes, values):
    _, fn = _RandomFunctionBuilder(shapes, values).build()
    bl = BallLarusNumbering(fn)
    assert bl.total_paths >= 1
    seen = set()
    for pid in range(min(bl.total_paths, 512)):
        blocks = bl.decode(pid)
        key = tuple(b.name for b in blocks)
        assert key not in seen
        seen.add(key)
        assert bl.encode(blocks) == pid
        # decoded path must be a contiguous CFG walk
        for u, v in zip(blocks, blocks[1:]):
            assert v in u.successors


@settings(max_examples=30, deadline=None)
@given(
    shapes=shapes_strategy,
    values=values_strategy,
    a=st.integers(-50, 50),
    b=st.integers(-50, 50),
)
def test_profiled_paths_reassemble_execution(shapes, values, a, b):
    m, fn = _RandomFunctionBuilder(shapes, values).build()
    profiler = PathProfiler([fn])
    recorder = TraceRecorder([fn])
    from repro.interp import MultiTracer

    interp = Interpreter(m, tracer=MultiTracer(profiler, recorder), fuel=2_000_000)
    interp.run("f", [a, b])

    profile = profiler.profiles[fn]
    executed = [blk for blk in recorder.traces[fn].blocks if blk is not None]

    # concatenating decoded paths in trace order must equal the block stream
    reassembled = []
    for pid in profile.trace:
        reassembled.extend(profile.decode(pid))
    assert [blk.name for blk in reassembled] == [blk.name for blk in executed]
    # total executions equal the number of completed paths
    assert profile.total_executions == len(profile.trace)
