from repro.analysis import (
    DataflowGraph,
    backward_slice,
    branch_memory_stats,
    control_dependence,
    hyperblock_size_stats,
    predication_stats,
)
from repro.ir import I32, IRBuilder, Module, verify_function


def _straight_line_with_memory():
    m = Module()
    g = m.add_global("buf", I32, 8)
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    a = fn.arg("a")
    addr0 = b.gep(g, 0, 4)
    addr1 = b.gep(g, 1, 4)
    st = b.store(a, addr0)
    ld = b.load(I32, addr1)
    x = b.add(ld, a)
    st2 = b.store(x, addr1)
    ld2 = b.load(I32, addr0)
    y = b.add(x, ld2)
    b.ret(y)
    verify_function(fn)
    insts = list(fn.entry.instructions)
    return fn, insts


def test_dfg_data_edges():
    fn, insts = _straight_line_with_memory()
    dfg = DataflowGraph.build(insts)
    add = next(n for n in dfg.nodes if n.inst.opcode == "add")
    # add depends on the load
    dep_opcodes = {dfg.nodes[d].inst.opcode for d in add.deps}
    assert "load" in dep_opcodes


def test_dfg_memory_ordering_conservative():
    fn, insts = _straight_line_with_memory()
    dfg = DataflowGraph.build(insts, memory_ordering=True)
    loads = [n for n in dfg.nodes if n.inst.opcode == "load"]
    stores = [n for n in dfg.nodes if n.inst.opcode == "store"]
    # first load is ordered after the first store
    assert stores[0].index in loads[0].deps
    # second store is ordered after the first store (store->store chain)
    assert stores[0].index in stores[1].deps or any(
        stores[0].index in dfg.nodes[d].deps for d in stores[1].deps
    )


def test_dfg_speculative_memory_breaks_load_ordering():
    fn, insts = _straight_line_with_memory()
    spec = DataflowGraph.build(insts, speculative_memory=True)
    loads = [n for n in spec.nodes if n.inst.opcode == "load"]
    stores = [n for n in spec.nodes if n.inst.opcode == "store"]
    # loads no longer wait for stores
    assert stores[0].index not in loads[0].deps
    # but store commit order is preserved
    assert stores[0].index in stores[1].deps


def test_dfg_critical_path_and_parallelism():
    fn, insts = _straight_line_with_memory()
    dfg = DataflowGraph.build(insts, memory_ordering=False)
    assert dfg.critical_path_length() > 0
    assert 0 < dfg.average_parallelism() <= len(insts)
    levels = dfg.depth_levels()
    assert len(levels) == len(insts)
    assert min(levels) == 0


def test_dfg_roots_have_no_deps():
    fn, insts = _straight_line_with_memory()
    dfg = DataflowGraph.build(insts)
    for r in dfg.roots():
        assert r.deps == []


def test_control_dependence_diamond(diamond):
    _, fn = diamond
    cd = control_dependence(fn)
    entry = fn.get_block("entry")
    assert set(cd) == {entry}
    names = {b.name for b in cd[entry]}
    assert names == {"then", "else"}


def test_control_dependence_loop(loop_with_branch):
    _, fn = loop_with_branch
    cd = control_dependence(fn)
    then = fn.get_block("then")
    dep_names = {b.name for b in cd[then]}
    assert "else" in dep_names and "merge" in dep_names


def test_backward_slice_reaches_loads(array_sum):
    _, fn = array_sum
    # condition of the header branch depends on the phi, not on loads
    header = fn.get_block("header")
    cond = header.terminator.cond
    sl = backward_slice(cond)
    assert cond in sl
    assert any(i.opcode == "phi" for i in sl)


def test_branch_memory_stats_smoke(array_sum):
    _, fn = array_sum
    stats = branch_memory_stats(fn)
    assert stats.branch_count == 1
    # the load is control-dependent on the header branch
    assert stats.avg_mem_dependent_on_branch >= 1
    assert stats.avg_mem_branch_depends_on == 0


def test_branch_memory_stats_mem_to_branch():
    m = Module()
    g = m.add_global("flagbuf", I32, 4)
    fn = m.add_function("f", [("i", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    t = b.add_block("t")
    e = b.add_block("e")
    b.set_block(entry)
    addr = b.gep(g, fn.arg("i"), 4)
    v = b.load(I32, addr)
    c = b.icmp("sgt", v, 0)
    b.condbr(c, t, e)
    b.set_block(t)
    b.ret(1)
    b.set_block(e)
    b.ret(0)
    verify_function(fn)
    stats = branch_memory_stats(fn)
    assert stats.avg_mem_branch_depends_on == 1


def test_predication_stats(loop_with_branch):
    _, fn = loop_with_branch
    stats = predication_stats(fn)
    # header exit branch + if branch are forward; latch branch is backward
    assert stats.total_cond_branches == 3
    assert stats.backward_branches == 1
    assert stats.forward_branches == 2


def test_hyperblock_size_stats(loop_with_branch):
    _, fn = loop_with_branch
    stats = hyperblock_size_stats(fn)
    assert stats.avg_hyperblock_ops > stats.avg_basic_block_ops
    assert stats.expansion_ratio > 1.0


def test_hyperblock_size_stats_acyclic(diamond):
    _, fn = diamond
    stats = hyperblock_size_stats(fn)
    assert stats.avg_hyperblock_ops > 0
