from repro.analysis import CFG, DominatorTree, PostDominatorTree, VIRTUAL_EXIT


def test_cfg_edges_and_preds(diamond):
    _, fn = diamond
    cfg = CFG(fn)
    entry = fn.get_block("entry")
    then = fn.get_block("then")
    els = fn.get_block("else")
    merge = fn.get_block("merge")
    assert set(cfg.succs(entry)) == {then, els}
    assert set(cfg.preds(merge)) == {then, els}
    assert cfg.exits() == [merge]
    assert len(list(cfg.edges())) == 4


def test_rpo_entry_first(loop_with_branch):
    _, fn = loop_with_branch
    cfg = CFG(fn)
    assert cfg.rpo[0] is fn.entry
    assert len(cfg.rpo) == len(fn.blocks)
    # rpo visits a block before its non-back-edge successors
    idx = {b: i for i, b in enumerate(cfg.rpo)}
    header = fn.get_block("header")
    then = fn.get_block("then")
    assert idx[header] < idx[then]


def test_dominators_diamond(diamond):
    _, fn = diamond
    dom = DominatorTree.compute(fn)
    entry = fn.get_block("entry")
    then = fn.get_block("then")
    els = fn.get_block("else")
    merge = fn.get_block("merge")
    assert dom.immediate_dominator(then) is entry
    assert dom.immediate_dominator(els) is entry
    assert dom.immediate_dominator(merge) is entry
    assert dom.dominates(entry, merge)
    assert not dom.dominates(then, merge)
    assert dom.dominates(merge, merge)
    assert dom.strictly_dominates(entry, merge)
    assert not dom.strictly_dominates(merge, merge)


def test_dominators_loop(counted_loop):
    _, fn = counted_loop
    dom = DominatorTree.compute(fn)
    entry = fn.get_block("entry")
    header = fn.get_block("header")
    body = fn.get_block("body")
    exit_ = fn.get_block("exit")
    assert dom.immediate_dominator(header) is entry
    assert dom.immediate_dominator(body) is header
    assert dom.immediate_dominator(exit_) is header
    assert dom.dominates(header, body)


def test_dominance_frontier_diamond(diamond):
    _, fn = diamond
    dom = DominatorTree.compute(fn)
    df = dom.dominance_frontier()
    then = fn.get_block("then")
    els = fn.get_block("else")
    merge = fn.get_block("merge")
    assert merge in df[then]
    assert merge in df[els]
    assert df[merge] == []


def test_dominator_depth(diamond):
    _, fn = diamond
    dom = DominatorTree.compute(fn)
    assert dom.depth(fn.get_block("entry")) == 0
    assert dom.depth(fn.get_block("merge")) == 1


def test_post_dominators_diamond(diamond):
    _, fn = diamond
    pdom = PostDominatorTree.compute(fn)
    entry = fn.get_block("entry")
    then = fn.get_block("then")
    merge = fn.get_block("merge")
    assert pdom.post_dominates(merge, entry)
    assert pdom.post_dominates(merge, then)
    assert not pdom.post_dominates(then, entry)
    assert pdom.immediate_post_dominator(entry) is merge
    assert pdom.immediate_post_dominator(merge) is VIRTUAL_EXIT


def test_post_dominators_loop(loop_with_branch):
    _, fn = loop_with_branch
    pdom = PostDominatorTree.compute(fn)
    header = fn.get_block("header")
    latch = fn.get_block("latch")
    exit_ = fn.get_block("exit")
    assert pdom.post_dominates(exit_, header)
    # latch does not post-dominate header (loop can exit at header)
    assert not pdom.post_dominates(latch, header)
    # latch post-dominates both arms of the if
    assert pdom.post_dominates(latch, fn.get_block("then"))
