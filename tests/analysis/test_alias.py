from repro.analysis import DataflowGraph, may_alias, must_alias, same_value
from repro.ir import I32, IRBuilder, Module, verify_function


def _mem_kernel():
    """Loads/stores over two arrays with related and unrelated indices."""
    m = Module()
    a = m.add_global("A", I32, 64)
    barr = m.add_global("B", I32, 64)
    fn = m.add_function("f", [("i", I32), ("j", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    i = fn.arg("i")
    j = fn.arg("j")
    addr_ai = b.gep(a, i, 4)  # A[i]
    i1 = b.add(i, 1)
    addr_ai1 = b.gep(a, i1, 4)  # A[i+1]
    addr_bi = b.gep(barr, i, 4)  # B[i]
    addr_aj = b.gep(a, j, 4)  # A[j]
    addr_ai_dup = b.gep(a, i, 4)  # A[i] again, distinct gep
    st_ai = b.store(5, addr_ai)
    ld_ai1 = b.load(I32, addr_ai1)
    ld_bi = b.load(I32, addr_bi)
    ld_aj = b.load(I32, addr_aj)
    ld_ai = b.load(I32, addr_ai_dup)
    out = b.add(ld_ai1, ld_bi)
    out = b.add(out, ld_aj)
    out = b.add(out, ld_ai)
    b.ret(out)
    verify_function(fn)
    return fn, dict(
        st_ai=st_ai, ld_ai1=ld_ai1, ld_bi=ld_bi, ld_aj=ld_aj, ld_ai=ld_ai
    )


def test_different_arrays_never_alias():
    fn, ops = _mem_kernel()
    assert not may_alias(ops["st_ai"], ops["ld_bi"])


def test_same_base_constant_offset_disjoint():
    fn, ops = _mem_kernel()
    assert not may_alias(ops["st_ai"], ops["ld_ai1"])


def test_unknown_indices_may_alias():
    fn, ops = _mem_kernel()
    assert may_alias(ops["st_ai"], ops["ld_aj"])


def test_structurally_identical_address_aliases():
    fn, ops = _mem_kernel()
    assert may_alias(ops["st_ai"], ops["ld_ai"])
    assert must_alias(ops["st_ai"], ops["ld_ai"])


def test_must_alias_requires_equality():
    fn, ops = _mem_kernel()
    assert not must_alias(ops["st_ai"], ops["ld_ai1"])
    assert not must_alias(ops["st_ai"], ops["ld_bi"])


def test_same_value_structural():
    m = Module()
    fn = m.add_function("g", [("x", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    x = fn.arg("x")
    e1 = b.add(x, 3)
    e2 = b.add(x, 3)
    e3 = b.add(x, 4)
    b.ret(e1)
    assert same_value(e1, e2)
    assert not same_value(e1, e3)
    assert same_value(x, x)


def test_dfg_alias_analysis_prunes_false_dependences():
    fn, ops = _mem_kernel()
    insts = list(fn.entry.instructions)
    conservative = DataflowGraph.build(insts)
    precise = DataflowGraph.build(insts, use_alias_analysis=True)

    def dep_edges(dfg):
        return sum(len(n.deps) for n in dfg.nodes)

    assert dep_edges(precise) < dep_edges(conservative)

    # the must-alias load still depends on the store
    st_idx = insts.index(ops["st_ai"])
    ld_ai_node = precise.node_for(ops["ld_ai"])
    assert st_idx in ld_ai_node.deps
    # the disjoint loads do not
    for name in ("ld_ai1", "ld_bi"):
        node = precise.node_for(ops[name])
        assert st_idx not in node.deps


def test_alias_analysis_improves_critical_path():
    fn, ops = _mem_kernel()
    insts = list(fn.entry.instructions)
    conservative = DataflowGraph.build(insts)
    precise = DataflowGraph.build(insts, use_alias_analysis=True)
    assert (
        precise.critical_path_length() <= conservative.critical_path_length()
    )


def test_masked_indices_stay_conservative():
    """Our kernels mask indices (and i, mask): different masked exprs must
    remain may-alias unless structurally equal."""
    m = Module()
    a = m.add_global("A", I32, 64)
    fn = m.add_function("f", [("i", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    masked1 = b.and_(fn.arg("i"), 63)
    masked2 = b.and_(fn.arg("i"), 63)
    g1 = b.gep(a, masked1, 4)
    g2 = b.gep(a, masked2, 4)
    st = b.store(1, g1)
    ld = b.load(I32, g2)
    b.ret(ld)
    assert may_alias(st, ld)  # structurally equal -> aliases
    assert must_alias(st, ld)
