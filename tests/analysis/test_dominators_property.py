"""Property test: the CHK dominator tree matches brute-force dominance.

Brute-force definition: ``a`` dominates ``b`` iff removing ``a`` from the
CFG makes ``b`` unreachable from the entry.  We check the iterative
algorithm against it over randomly generated structured functions.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.analysis import CFG, DominatorTree, PostDominatorTree
from tests.profiling.test_ball_larus_property import _RandomFunctionBuilder


def _brute_force_dominates(cfg: CFG, a, b) -> bool:
    if a is b:
        return True
    # reachability from entry avoiding `a`
    seen = set()
    stack = [cfg.entry]
    while stack:
        node = stack.pop()
        if node is a or node in seen:
            continue
        seen.add(node)
        stack.extend(cfg.succs(node))
    return b not in seen


shapes = st.lists(st.integers(0, 3), min_size=1, max_size=18)
values = st.lists(st.integers(0, 99), min_size=1, max_size=18)


@settings(max_examples=30, deadline=None)
@given(shapes=shapes, values=values)
def test_dominator_tree_matches_brute_force(shapes, values):
    _, fn = _RandomFunctionBuilder(shapes, values).build()
    cfg = CFG(fn)
    dom = DominatorTree.compute(cfg)
    blocks = cfg.blocks
    for a in blocks:
        for b in blocks:
            assert dom.dominates(a, b) == _brute_force_dominates(cfg, a, b), (
                "%s dominates %s mismatch" % (a.name, b.name)
            )


@settings(max_examples=30, deadline=None)
@given(shapes=shapes, values=values)
def test_idom_is_unique_strict_dominator_closest(shapes, values):
    """idom(b) strictly dominates b and every other strict dominator of b
    dominates idom(b)."""
    _, fn = _RandomFunctionBuilder(shapes, values).build()
    cfg = CFG(fn)
    dom = DominatorTree.compute(cfg)
    for b in cfg.blocks:
        idom = dom.immediate_dominator(b)
        if idom is None:
            assert b is cfg.entry
            continue
        assert dom.strictly_dominates(idom, b)
        for a in cfg.blocks:
            if a is not b and a is not idom and dom.strictly_dominates(a, b):
                assert dom.dominates(a, idom)


@settings(max_examples=20, deadline=None)
@given(shapes=shapes, values=values)
def test_post_dominance_duality(shapes, values):
    """Every block is post-dominated by itself, and the unique exit block
    post-dominates every block in single-exit functions."""
    _, fn = _RandomFunctionBuilder(shapes, values).build()
    cfg = CFG(fn)
    pdom = PostDominatorTree.compute(cfg)
    exits = cfg.exits()
    for b in cfg.blocks:
        assert pdom.post_dominates(b, b)
    if len(exits) == 1:
        for b in cfg.blocks:
            assert pdom.post_dominates(exits[0], b)
