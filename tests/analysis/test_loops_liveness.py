from repro.analysis import (
    CFG,
    Liveness,
    LoopInfo,
    back_edges,
    region_live_values,
)


def test_back_edges_simple_loop(counted_loop):
    _, fn = counted_loop
    edges = back_edges(fn)
    assert len(edges) == 1
    (src, dst) = edges[0]
    assert src.name == "body" and dst.name == "header"


def test_no_back_edges_in_diamond(diamond):
    _, fn = diamond
    assert back_edges(fn) == []


def test_loopinfo_counted_loop(counted_loop):
    _, fn = counted_loop
    li = LoopInfo.compute(fn)
    assert len(li.loops) == 1
    loop = li.loops[0]
    assert loop.header.name == "header"
    assert {b.name for b in loop.blocks} == {"header", "body"}
    assert loop.is_innermost
    assert loop.depth == 1
    assert li.backward_branch_count == 1


def test_loopinfo_loop_with_branch(loop_with_branch):
    _, fn = loop_with_branch
    li = LoopInfo.compute(fn)
    assert len(li.loops) == 1
    loop = li.loops[0]
    assert {b.name for b in loop.blocks} == {
        "header",
        "then",
        "else",
        "merge",
        "latch",
    }
    exits = loop.exits(CFG(fn))
    assert {(a.name, b.name) for a, b in exits} == {
        ("header", "exit"),
        ("latch", "exit"),
    }


def test_nested_loops():
    from repro.ir import Constant, I32, IRBuilder, Module, verify_function

    m = Module()
    fn = m.add_function("nested", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    oh = b.add_block("outer_header")
    ih = b.add_block("inner_header")
    ib = b.add_block("inner_body")
    ol = b.add_block("outer_latch")
    ex = b.add_block("exit")

    b.set_block(entry)
    b.br(oh)
    b.set_block(oh)
    i = b.phi(I32, "i")
    ci = b.icmp("slt", i, fn.arg("n"))
    b.condbr(ci, ih, ex)
    b.set_block(ih)
    j = b.phi(I32, "j")
    cj = b.icmp("slt", j, 4)
    b.condbr(cj, ib, ol)
    b.set_block(ib)
    j2 = b.add(j, 1)
    b.br(ih)
    b.set_block(ol)
    i2 = b.add(i, 1)
    b.br(oh)
    b.set_block(ex)
    b.ret(i)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(ol, i2)
    j.add_incoming(oh, Constant(I32, 0))
    j.add_incoming(ib, j2)
    verify_function(fn)

    li = LoopInfo.compute(fn)
    assert len(li.loops) == 2
    inner = li.loop_for_header(ih)
    outer = li.loop_for_header(oh)
    assert inner.parent is outer
    assert outer.children == [inner]
    assert inner.depth == 2 and outer.depth == 1
    assert inner.is_innermost and not outer.is_innermost
    assert li.innermost_loops() == [inner]
    assert li.innermost_loop_containing(ib) is inner
    assert li.innermost_loop_containing(ol) is outer
    assert li.innermost_loop_containing(ex) is None
    assert li.backward_branch_count == 2


def test_liveness_diamond(diamond):
    _, fn = diamond
    lv = Liveness.compute(fn)
    entry = fn.get_block("entry")
    then = fn.get_block("then")
    a = fn.arg("a")
    b_ = fn.arg("b")
    # both args are live into entry; 'a' is live into then
    assert a in lv.live_in[entry] and b_ in lv.live_in[entry]
    assert a in lv.live_in[then]
    assert b_ not in lv.live_in[then]


def test_liveness_loop_carried(counted_loop):
    _, fn = counted_loop
    lv = Liveness.compute(fn)
    header = fn.get_block("header")
    body = fn.get_block("body")
    phis = header.phis
    # loop-carried phis live around the loop: live out of body via edge use
    for phi in phis:
        assert phi in lv.live_in[body] or phi in lv.live_out[header]
    n = fn.arg("n")
    assert n in lv.live_in[header]


def test_region_live_values(counted_loop):
    _, fn = counted_loop
    body = fn.get_block("body")
    live_ins, live_outs = region_live_values(fn, [body])
    names_in = {getattr(v, "name", "?") for v in live_ins}
    assert "i" in names_in and "acc" in names_in
    # i.next and acc.next feed header phis (outside region)
    assert len(live_outs) == 2


def test_region_live_values_whole_loop(counted_loop):
    _, fn = counted_loop
    header = fn.get_block("header")
    body = fn.get_block("body")
    live_ins, live_outs = region_live_values(fn, [header, body])
    # n flows in; acc flows out (used by ret)
    in_names = {getattr(v, "name", "?") for v in live_ins}
    assert "n" in in_names
    out_names = {getattr(v, "name", "?") for v in live_outs}
    assert "acc" in out_names
