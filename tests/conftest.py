"""Shared test fixtures: small canonical functions used across test modules."""

from __future__ import annotations

import pytest

from repro.artifacts import CACHE_DIR_ENV
from repro.ir import Constant, I32, IRBuilder, Module, verify_function


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path_factory, monkeypatch):
    """Keep every test's persistent artifact cache away from ~/.cache."""
    monkeypatch.setenv(
        CACHE_DIR_ENV, str(tmp_path_factory.mktemp("repro-cache"))
    )


def build_diamond():
    """``if (a < b) x = a+1 else x = b*2; return x`` — classic diamond.

    Returns (module, function).
    """
    m = Module("diamond")
    fn = m.add_function("diamond", [("a", I32), ("b", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    then = b.add_block("then")
    els = b.add_block("else")
    merge = b.add_block("merge")

    b.set_block(entry)
    cond = b.icmp("slt", fn.arg("a"), fn.arg("b"))
    b.condbr(cond, then, els)

    b.set_block(then)
    x1 = b.add(fn.arg("a"), 1)
    b.br(merge)

    b.set_block(els)
    x2 = b.mul(fn.arg("b"), 2)
    b.br(merge)

    b.set_block(merge)
    phi = b.phi(I32, "x")
    phi.add_incoming(then, x1)
    phi.add_incoming(els, x2)
    b.ret(phi)
    verify_function(fn)
    return m, fn


def build_counted_loop():
    """``for (i = 0; i < n; i++) acc += i*2; return acc``.

    Returns (module, function).
    """
    m = Module("loop")
    fn = m.add_function("loop", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, body, exit_)

    b.set_block(body)
    twice = b.mul(i, 2)
    acc_next = b.add(acc, twice)
    i_next = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i_next)
    acc.add_incoming(entry, Constant(I32, 0))
    acc.add_incoming(body, acc_next)

    b.set_block(exit_)
    b.ret(acc)
    verify_function(fn)
    return m, fn


def build_loop_with_branch():
    """A loop whose body has an if/else diamond plus a break-style early exit.

    for (i = 0; i < n; i++):
        if (i % 3 == 0): acc += i
        else:            acc += 2*i
        if (acc > 100):  break
    return acc
    """
    from repro.ir import Constant

    m = Module("loop_branch")
    fn = m.add_function("loop_branch", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    then = b.add_block("then")
    els = b.add_block("else")
    merge = b.add_block("merge")
    latch = b.add_block("latch")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, then, exit_)

    b.set_block(then)
    rem = b.srem(i, 3)
    is_zero = b.icmp("eq", rem, 0)
    b.condbr(is_zero, els, merge)

    b.set_block(els)
    a1 = b.add(acc, i)
    b.br(latch)

    b.set_block(merge)
    dbl = b.mul(i, 2)
    a2 = b.add(acc, dbl)
    b.br(latch)

    b.set_block(latch)
    acc_next = b.phi(I32, "acc.next")
    acc_next.add_incoming(els, a1)
    acc_next.add_incoming(merge, a2)
    big = b.icmp("sgt", acc_next, 100)
    i_next = b.add(i, 1)
    b.condbr(big, exit_, header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(latch, i_next)
    acc.add_incoming(entry, Constant(I32, 0))
    acc.add_incoming(latch, acc_next)

    b.set_block(exit_)
    result = b.phi(I32, "result")
    result.add_incoming(header, acc)
    result.add_incoming(latch, acc_next)
    b.ret(result)
    verify_function(fn)
    return m, fn


def build_array_sum(n: int = 16):
    """Sum a global i32 array of length ``n``; exercises load/gep."""
    from repro.ir import Constant

    m = Module("arraysum")
    data = m.add_global("data", I32, n, init=list(range(n)))
    fn = m.add_function("array_sum", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, body, exit_)

    b.set_block(body)
    addr = b.gep(data, i, 4)
    val = b.load(I32, addr)
    acc_next = b.add(acc, val)
    i_next = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i_next)
    acc.add_incoming(entry, Constant(I32, 0))
    acc.add_incoming(body, acc_next)

    b.set_block(exit_)
    b.ret(acc)
    verify_function(fn)
    return m, fn


@pytest.fixture
def diamond():
    return build_diamond()


@pytest.fixture
def counted_loop():
    return build_counted_loop()


@pytest.fixture
def loop_with_branch():
    return build_loop_with_branch()


@pytest.fixture
def array_sum():
    return build_array_sum()


# -- region/profiling fixtures (shared by frames/accel/sim tests) --------

from repro.interp import Interpreter, MultiTracer
from repro.profiling import EdgeProfiler, PathProfiler


def build_anticorrelated():
    """Fig. 3 style function: two perfectly anti-correlated diamonds in a loop.

    Even iterations take (A,P,B1,C,D2,E); odd take (A,P,B2,C,D1,E).  Every
    branch is 50/50 in the edge profile, and the two branches' locally chosen
    sides (B1 and D1) never execute together, so edge-profile-driven
    superblock growth constructs a block sequence that never occurs.
    """
    m = Module("anticorr")
    fn = m.add_function("anticorr", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    a = b.add_block("A")
    p = b.add_block("P")
    b1 = b.add_block("B1")
    b2 = b.add_block("B2")
    c = b.add_block("C")
    d1 = b.add_block("D1")
    d2 = b.add_block("D2")
    e = b.add_block("E")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(a)

    b.set_block(a)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    in_range = b.icmp("slt", i, fn.arg("n"))
    b.condbr(in_range, p, exit_)

    b.set_block(p)
    parity = b.srem(i, 2)
    even = b.icmp("eq", parity, 0)
    odd = b.icmp("ne", parity, 0)
    b.condbr(even, b1, b2)

    b.set_block(b1)
    t1 = b.add(acc, 1)
    b.br(c)

    b.set_block(b2)
    t2 = b.add(acc, 2)
    b.br(c)

    b.set_block(c)
    mid = b.phi(I32, "mid")
    mid.add_incoming(b1, t1)
    mid.add_incoming(b2, t2)
    # anti-correlated with the first diamond: even -> D2, odd -> D1, but the
    # branch is written on `odd` so each branch's *first* target belongs to
    # the other iteration parity.
    b.condbr(odd, d1, d2)

    b.set_block(d1)
    u1 = b.mul(mid, 3)
    b.br(e)

    b.set_block(d2)
    u2 = b.mul(mid, 5)
    b.br(e)

    b.set_block(e)
    out = b.phi(I32, "out")
    out.add_incoming(d1, u1)
    out.add_incoming(d2, u2)
    i_next = b.add(i, 1)
    b.br(a)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(e, i_next)
    acc.add_incoming(entry, Constant(I32, 0))
    acc.add_incoming(e, out)

    b.set_block(exit_)
    b.ret(acc)
    verify_function(fn)
    return m, fn


def profile_function(m, fn, runs):
    pp = PathProfiler([fn])
    ep = EdgeProfiler([fn])
    interp = Interpreter(m, tracer=MultiTracer(pp, ep))
    for args in runs:
        interp.run(fn.name, args)
    return pp.profile_for(fn), ep.profile_for(fn)


@pytest.fixture
def anticorrelated():
    return build_anticorrelated()


@pytest.fixture
def profiled_loop_with_branch(loop_with_branch):
    m, fn = loop_with_branch
    pp, ep = profile_function(m, fn, [[n] for n in (5, 13, 60, 60, 60)])
    return m, fn, pp, ep


@pytest.fixture
def profiled_anticorrelated(anticorrelated):
    m, fn = anticorrelated
    pp, ep = profile_function(m, fn, [[40]])
    return m, fn, pp, ep
