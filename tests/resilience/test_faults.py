"""Unit semantics of the fault-injection core: matching, windows,
determinism, JSON round-trips and ambient installation."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    corrupt_value,
)

pytestmark = pytest.mark.chaos


def fire_pattern(injector, site, key, n):
    """True/False per consultation, for ``n`` consultations."""
    return [injector.consult(site, key) is not None for _ in range(n)]


def test_disabled_by_default():
    assert not faults.enabled()
    assert faults.active() is None
    assert faults.consult("worker.crash", "x") is None


def test_installed_context_restores_previous_state():
    outer = FaultPlan(specs=(FaultSpec(site="a"),))
    with faults.installed(outer):
        assert faults.enabled()
        with faults.installed(None):
            assert not faults.enabled()
        assert faults.enabled()
        assert faults.active().plan is outer
    assert not faults.enabled()


def test_site_and_key_matching():
    plan = FaultPlan(specs=(FaultSpec(site="s", key="k", times=-1),))
    inj = FaultInjector(plan)
    assert inj.consult("other", "k") is None
    assert inj.consult("s", "nope") is None
    assert inj.consult("s", "k") is not None


def test_none_key_matches_any():
    inj = FaultInjector(FaultPlan(specs=(FaultSpec(site="s", times=-1),)))
    assert inj.consult("s", "anything") is not None
    assert inj.consult("s", None) is not None


def test_after_and_times_windows():
    plan = FaultPlan(specs=(FaultSpec(site="s", after=2, times=2),))
    inj = FaultInjector(plan)
    # skip 2, fire 2, then exhausted
    assert fire_pattern(inj, "s", None, 6) == [
        False, False, True, True, False, False,
    ]


def test_unlimited_times():
    inj = FaultInjector(FaultPlan(specs=(FaultSpec(site="s", times=-1),)))
    assert all(fire_pattern(inj, "s", None, 10))


def test_attempt_gating():
    plan = FaultPlan(specs=(FaultSpec(site="s", times=-1, attempts=(0, 2)),))
    assert FaultInjector(plan, attempt=0).consult("s") is not None
    assert FaultInjector(plan, attempt=1).consult("s") is None
    assert FaultInjector(plan, attempt=2).consult("s") is not None


def test_probability_is_deterministic_and_seed_sensitive():
    plan7 = FaultPlan(seed=7, specs=(
        FaultSpec(site="s", times=-1, probability=0.5),
    ))
    a = fire_pattern(FaultInjector(plan7), "s", "k", 64)
    b = fire_pattern(FaultInjector(plan7), "s", "k", 64)
    assert a == b  # same plan, same sequence
    assert any(a) and not all(a)  # p=0.5 actually mixes
    plan8 = FaultPlan(seed=8, specs=plan7.specs)
    c = fire_pattern(FaultInjector(plan8), "s", "k", 64)
    assert a != c  # the seed matters


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan(seed=3, specs=(
        FaultSpec(site="worker.hang", key="470.lbm", after=1, times=2,
                  payload={"seconds": 9.5}),
        FaultSpec(site="frame.guard_flip", probability=0.25,
                  attempts=(0, 1)),
    ))
    path = tmp_path / "plan.json"
    import json

    path.write_text(json.dumps(plan.to_dict()))
    loaded = FaultPlan.from_json_file(str(path))
    assert loaded == plan


def test_plan_is_picklable():
    import pickle

    plan = FaultPlan(seed=1, specs=(
        FaultSpec(site="worker.crash", key="x", payload={"exit_code": 3}),
    ))
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_corrupt_value_flips_and_payload_overrides():
    spec = FaultSpec(site="frame.store_corrupt")
    assert corrupt_value(21, spec) != 21
    assert corrupt_value(2.5, spec) != 2.5
    forced = FaultSpec(site="frame.store_corrupt", payload={"value": 99})
    assert corrupt_value(21, forced) == 99
