"""The crash-safe run journal (`repro.resilience.journal`).

Locks the durability contract: every fsynced record survives replay, a
torn trailing record is detected, counted and truncated (never an
error), and resuming against a journal written under different options
is a hard mismatch.  The hypothesis property drives the central claim —
replaying *any* byte prefix of a journal, then replaying the truncated
file again, reaches the same folded state: resume is idempotent.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.resilience.journal import (
    EVENT_RUN_RESUMED,
    EVENT_RUN_STARTED,
    JOURNAL_DIR_ENV,
    JOURNAL_FORMAT_VERSION,
    JournalError,
    JournalMismatch,
    JournalReplay,
    RunJournal,
    new_run_id,
    resolve_journal_dir,
    sweep_fingerprint,
)
from repro.sim.config import DEFAULT_CONFIG

MANIFEST = ["164.gzip", "470.lbm", "dwt53"]
FP = "f" * 64


def _create(tmp_path, run_id="run1", manifest=MANIFEST, fingerprint=FP):
    return RunJournal.create(
        str(tmp_path), run_id, fingerprint=fingerprint, manifest=manifest,
        config_fingerprint="cfg")


# -- ids, directories, fingerprints -----------------------------------------


def test_new_run_ids_are_valid_and_unique():
    ids = {new_run_id() for _ in range(16)}
    assert len(ids) == 16
    for run_id in ids:
        RunJournal("/tmp", run_id)  # validates without touching disk


@pytest.mark.parametrize("bad", ["", "../escape", "a/b", "a b", ".hidden"])
def test_path_unsafe_run_ids_are_rejected(bad):
    with pytest.raises(JournalError, match="invalid run id"):
        RunJournal("/tmp", bad)


def test_resolve_journal_dir_precedence(monkeypatch):
    monkeypatch.delenv(JOURNAL_DIR_ENV, raising=False)
    assert resolve_journal_dir(None) is None
    assert resolve_journal_dir("/a") == "/a"
    monkeypatch.setenv(JOURNAL_DIR_ENV, "/b")
    assert resolve_journal_dir(None) == "/b"
    assert resolve_journal_dir("/a") == "/a"


def test_sweep_fingerprint_pins_config_manifest_and_format():
    base = sweep_fingerprint(DEFAULT_CONFIG, MANIFEST)
    assert base == sweep_fingerprint(DEFAULT_CONFIG, list(MANIFEST))
    assert base != sweep_fingerprint(DEFAULT_CONFIG, MANIFEST[:-1])
    assert base != sweep_fingerprint(DEFAULT_CONFIG, list(reversed(MANIFEST)))
    import dataclasses

    cgra = dataclasses.replace(
        DEFAULT_CONFIG.cgra, rows=DEFAULT_CONFIG.cgra.rows + 1)
    other = dataclasses.replace(DEFAULT_CONFIG, cgra=cgra)
    assert base != sweep_fingerprint(other, MANIFEST)


# -- append / replay round-trip ---------------------------------------------


def test_round_trip_folds_lifecycle_into_state(tmp_path):
    j = _create(tmp_path)
    j.scheduled(MANIFEST)
    j.lifecycle("attempt_started", "164.gzip", attempt=0)
    j.completed("164.gzip", "key-gzip")
    j.lifecycle("attempt_started", "470.lbm", attempt=0)
    j.lifecycle("quarantined", "dwt53", kind="crash", attempts=2,
                error_type="WorkerCrashed")
    j.close()

    replay = RunJournal(str(tmp_path), "run1").replay()
    assert replay.torn_records == 0
    assert replay.header["event"] == EVENT_RUN_STARTED
    assert replay.header["manifest"] == MANIFEST
    assert replay.header["fingerprint"] == FP
    assert replay.header["format"] == JOURNAL_FORMAT_VERSION
    assert replay.scheduled == MANIFEST
    assert replay.completed == {"164.gzip": "key-gzip"}
    assert replay.in_flight == ["470.lbm"]  # started, never finished
    assert set(replay.quarantined) == {"dwt53"}
    assert replay.quarantined["dwt53"]["kind"] == "crash"


def test_completed_clears_in_flight_and_quarantine(tmp_path):
    j = _create(tmp_path)
    j.lifecycle("attempt_started", "470.lbm", attempt=0)
    j.lifecycle("quarantined", "470.lbm", kind="timeout", attempts=3)
    j.completed("470.lbm", "key")  # e.g. a resumed run finished it
    j.close()
    replay = RunJournal(str(tmp_path), "run1").replay()
    assert replay.completed == {"470.lbm": "key"}
    assert replay.in_flight == []
    assert replay.quarantined == {}


def test_create_refuses_to_overwrite_an_existing_run(tmp_path):
    _create(tmp_path).close()
    with pytest.raises(JournalError, match="already has a journal"):
        _create(tmp_path)


def test_replay_of_missing_journal_is_an_error(tmp_path):
    with pytest.raises(JournalError, match="no journal for run id"):
        RunJournal(str(tmp_path), "ghost").replay()


# -- torn-tail detection and truncation -------------------------------------


def test_torn_trailing_fragment_is_counted_and_truncated(tmp_path):
    j = _create(tmp_path)
    j.completed("164.gzip", "key")
    j.close()
    with open(j.path, "ab") as fh:
        fh.write(b'{"event":"completed","workload":"470.l')  # no newline

    obs.enable(reset=True)
    try:
        replay = RunJournal(str(tmp_path), "run1").replay()
        torn = obs.registry().get("resilience.journal_torn_records")
        assert torn is not None
        assert sum(v for _k, v in torn.series()) == 1
    finally:
        obs.disable()
        obs.registry().clear()

    assert replay.torn_records == 1
    assert replay.completed == {"164.gzip": "key"}
    # the file was truncated back to the durable prefix: a second replay
    # sees a clean journal with identical state
    again = RunJournal(str(tmp_path), "run1").replay()
    assert again.torn_records == 0
    assert again.completed == replay.completed
    assert again.events == replay.events


def test_fully_parseable_fragment_without_newline_is_still_torn(tmp_path):
    # the fsync covers the newline; a line missing it was never durable,
    # even if json.loads would accept the fragment
    j = _create(tmp_path)
    j.close()
    with open(j.path, "ab") as fh:
        fh.write(b'{"event":"completed","workload":"x","payload":"k"}')
    replay = RunJournal(str(tmp_path), "run1").replay()
    assert replay.torn_records == 1
    assert replay.completed == {}


def test_corrupt_line_poisons_everything_after_it(tmp_path):
    j = _create(tmp_path)
    j.completed("164.gzip", "key")
    j.close()
    with open(j.path, "ab") as fh:
        fh.write(b"\x00garbage\x00\n")
        fh.write(b'{"event":"completed","workload":"470.lbm","payload":"k"}\n')
    replay = RunJournal(str(tmp_path), "run1").replay()
    # both the garbage line and the (possibly state-dependent) record
    # after it are counted as lost
    assert replay.torn_records == 2
    assert replay.completed == {"164.gzip": "key"}
    again = RunJournal(str(tmp_path), "run1").replay()
    assert again.torn_records == 0
    assert again.completed == {"164.gzip": "key"}


def test_peek_reads_header_without_truncating(tmp_path):
    j = _create(tmp_path)
    j.close()
    with open(j.path, "ab") as fh:
        fh.write(b'{"torn')
    size_before = os.path.getsize(j.path)
    header = RunJournal.peek(str(tmp_path), "run1")
    assert header["manifest"] == MANIFEST
    assert os.path.getsize(j.path) == size_before  # side-effect free


# -- resume validation -------------------------------------------------------


def test_resume_appends_marker_and_reports_completed(tmp_path):
    j = _create(tmp_path)
    j.completed("164.gzip", "key")
    j.close()
    j2, replay = RunJournal.resume(
        str(tmp_path), "run1", fingerprint=FP, manifest=MANIFEST)
    j2.close()
    assert replay.completed == {"164.gzip": "key"}
    events = RunJournal(str(tmp_path), "run1").replay().events
    assert events[-1]["event"] == EVENT_RUN_RESUMED
    assert events[-1]["completed"] == 1


def test_resume_fingerprint_mismatch_is_a_hard_error(tmp_path):
    _create(tmp_path).close()
    with pytest.raises(JournalMismatch, match="fingerprint mismatch"):
        RunJournal.resume(str(tmp_path), "run1", fingerprint="0" * 64)


def test_resume_manifest_change_is_a_hard_error(tmp_path):
    _create(tmp_path).close()
    with pytest.raises(JournalMismatch, match="manifest changed"):
        RunJournal.resume(str(tmp_path), "run1", fingerprint=FP,
                          manifest=MANIFEST + ["fft-2d"])


def test_resume_format_mismatch_is_a_hard_error(tmp_path):
    j = _create(tmp_path)
    j.close()
    lines = open(j.path).read().splitlines()
    header = json.loads(lines[0])
    header["format"] = JOURNAL_FORMAT_VERSION + 1
    lines[0] = json.dumps(header, sort_keys=True, separators=(",", ":"))
    with open(j.path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    with pytest.raises(JournalMismatch, match="format"):
        RunJournal.resume(str(tmp_path), "run1", fingerprint=FP)


def test_resume_headerless_journal_is_a_hard_error(tmp_path):
    path = tmp_path / "bare.jsonl"
    path.write_text('{"event":"completed","workload":"x","payload":"k"}\n')
    with pytest.raises(JournalError, match="no run_started header"):
        RunJournal.resume(str(tmp_path), "bare", fingerprint=FP)


# -- payload store write-ahead ordering --------------------------------------


def test_payload_is_durable_before_its_completed_record(tmp_path):
    j = _create(tmp_path)
    key = j.store_payload("164.gzip", ("row", None, None))
    # the payload landed before any `completed` record references it
    assert j.load_payload(key) == ("row", None, None)
    j.completed("164.gzip", key)
    j.close()
    replay = RunJournal(str(tmp_path), "run1").replay()
    assert j.load_payload(replay.completed["164.gzip"]) == ("row", None, None)
    assert j.store.fsync  # journal payloads take the durable write path


def test_payload_keys_are_scoped_per_run_and_workload(tmp_path):
    a = RunJournal(str(tmp_path), "run-a")
    b = RunJournal(str(tmp_path), "run-b")
    assert a.payload_key("164.gzip") != a.payload_key("470.lbm")
    assert a.payload_key("164.gzip") != b.payload_key("164.gzip")
    assert a.payload_key("164.gzip") == RunJournal(
        str(tmp_path), "run-a").payload_key("164.gzip")


# -- the replay-idempotence property -----------------------------------------

_WORKLOADS = st.sampled_from(["w0", "w1", "w2", "w3"])
_EVENTS = st.lists(
    st.one_of(
        st.tuples(st.just("attempt_started"), _WORKLOADS),
        st.tuples(st.just("completed"), _WORKLOADS),
        st.tuples(st.just("quarantined"), _WORKLOADS),
    ),
    max_size=24,
)


def _state(replay: JournalReplay):
    return (
        dict(replay.completed),
        sorted(replay.quarantined),
        sorted(replay.in_flight),
        list(replay.scheduled),
    )


@pytest.mark.chaos
@settings(max_examples=60, deadline=None)
@given(events=_EVENTS, cut=st.integers(min_value=0, max_value=10_000),
       data=st.data())
def test_replay_of_any_prefix_is_idempotent(tmp_path_factory, events, cut,
                                            data):
    """Crash anywhere: replay truncates to a durable prefix, and replay
    of the truncated file is a fixed point (resume, re-resume, ... all
    see the same state)."""
    tmp = tmp_path_factory.mktemp("journal-prop")
    j = RunJournal.create(
        str(tmp), "prop", fingerprint=FP, manifest=["w0", "w1", "w2", "w3"],
        config_fingerprint="cfg")
    j.scheduled(["w0", "w1", "w2", "w3"])
    for kind, name in events:
        if kind == "completed":
            j.completed(name, "key-" + name)
        elif kind == "attempt_started":
            j.lifecycle("attempt_started", name, attempt=0)
        else:
            j.lifecycle("quarantined", name, kind="crash", attempts=1)
    j.close()

    blob = open(j.path, "rb").read()
    cut = min(cut, len(blob))
    # optionally corrupt the torn tail, as a real crash mid-write would
    tail = b""
    if cut < len(blob) and data.draw(st.booleans(), label="garbage_tail"):
        tail = b"\xff{torn"
    with open(j.path, "wb") as fh:
        fh.write(blob[:cut] + tail)

    if cut == 0 or b"\n" not in blob[:cut]:
        # not even the header survived: resume correctly refuses
        replay = RunJournal(str(tmp), "prop").replay()
        assert replay.header is None
        return

    first = RunJournal(str(tmp), "prop").replay()
    second = RunJournal(str(tmp), "prop").replay()
    third = RunJournal(str(tmp), "prop").replay()
    assert second.torn_records == 0  # truncation removed the tear
    assert _state(first) == _state(second) == _state(third)
    assert first.events == second.events == third.events
    # every record that survived is a prefix of what was written: no
    # record is ever invented or reordered by replay
    full = [json.loads(line) for line in blob.splitlines()]
    assert first.events == full[: len(first.events)]
    # a workload is restored only on the strength of a durable
    # `completed` record in that prefix
    for name in first.completed:
        assert {"event": "completed", "workload": name,
                "payload": "key-" + name} in first.events
