"""Chaos scenarios: the fail-safe runner and the pipeline fan-out.

Toy-task tests exercise :func:`run_failsafe` directly (crash, hang,
exception, retry, quarantine, fail-fast, blame accuracy); suite-level
tests drive ``evaluate_suite`` under a seeded :class:`FaultPlan` and
check the acceptance scenario from the resilience issue — including
that rerunning the same seed reproduces the identical outcome.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.exec import worker as exec_worker
from repro.pipeline import evaluate_suite
from repro.resilience import faults
from repro.resilience.faults import (
    SITE_INTERP_RUN,
    SITE_WORKER_CRASH,
    SITE_WORKER_EXCEPTION,
    SITE_WORKER_HANG,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.runner import (
    FailurePolicy,
    WorkloadExecutionError,
    WorkloadFailure,
    run_failsafe,
    split_failures,
)
from repro.workloads.base import clear_profile_cache

pytestmark = pytest.mark.chaos

# toy fault sites, consulted by toy_task itself (worker-side, like the
# pipeline's worker.* sites but without the cost of a real evaluation)
TOY_CRASH = "toy.crash"
TOY_HANG = "toy.hang"
TOY_EXCEPTION = "toy.exception"

#: fast retry policy for toy tests — no point sleeping in CI
FAST = dict(backoff_base=0.01, backoff_cap=0.05)


def toy_task(item, plan, attempt):
    """Picklable pool task: consult the plan, then echo item and attempt."""
    if plan is not None:
        inj = faults.FaultInjector(plan, attempt=attempt)
        spec = inj.consult(TOY_CRASH, item)
        if spec is not None:
            # dies the way the current backend dies: os._exit in a
            # process worker, an inline WorkerCrashed everywhere else
            exec_worker.crash(int(spec.payload.get("exit_code", 7)))
        if exec_worker.preemptive():
            spec = inj.consult(TOY_HANG, item)
            if spec is not None:
                time.sleep(float(spec.payload.get("seconds", 30.0)))
        spec = inj.consult(TOY_EXCEPTION, item)
        if spec is not None:
            raise ValueError("boom:%s" % item)
    return "ok:%s:%d" % (item, attempt)


# -- run_failsafe unit scenarios -----------------------------------------------


def test_all_healthy_returns_in_item_order():
    rows = run_failsafe(toy_task, ["a", "b", "c"], jobs=2)
    assert rows == ["ok:a:0", "ok:b:0", "ok:c:0"]


def test_exception_on_first_attempt_recovers_on_retry():
    plan = FaultPlan(specs=(
        FaultSpec(site=TOY_EXCEPTION, key="b", times=-1, attempts=(0,)),
    ))
    rows = run_failsafe(
        toy_task, ["a", "b"], jobs=2,
        policy=FailurePolicy(retries=2, **FAST), plan=plan,
    )
    assert rows == ["ok:a:0", "ok:b:1"]


def test_persistent_exception_quarantines_with_cause_attached():
    plan = FaultPlan(specs=(FaultSpec(site=TOY_EXCEPTION, key="b", times=-1),))
    rows = run_failsafe(
        toy_task, ["a", "b", "c"], jobs=2,
        policy=FailurePolicy(retries=1, **FAST), plan=plan,
    )
    good, bad = split_failures(rows)
    assert good == ["ok:a:0", "ok:c:0"]
    [f] = bad
    assert rows[1] is f
    assert (f.workload, f.kind, f.attempts) == ("b", "exception", 2)
    assert f.error_type == "ValueError" and "boom:b" in f.error
    assert f.name == "b" and f.ok is False


def test_hard_crash_quarantines_without_charging_neighbours():
    plan = FaultPlan(specs=(FaultSpec(site=TOY_CRASH, key="b", times=-1),))
    rows = run_failsafe(
        toy_task, ["a", "b", "c", "d"], jobs=2,
        policy=FailurePolicy(retries=1, **FAST), plan=plan,
    )
    # neighbours whose futures were poisoned by BrokenProcessPool are
    # rerun uncharged: their attempt counters stay at 0
    assert rows[0] == "ok:a:0" and rows[2] == "ok:c:0" and rows[3] == "ok:d:0"
    assert isinstance(rows[1], WorkloadFailure)
    assert (rows[1].kind, rows[1].attempts) == ("crash", 2)


def test_hang_times_out_and_quarantines():
    plan = FaultPlan(specs=(
        FaultSpec(site=TOY_HANG, key="b", times=-1,
                  payload={"seconds": 30.0}),
    ))
    t0 = time.monotonic()
    rows = run_failsafe(
        toy_task, ["a", "b", "c"], jobs=2,
        policy=FailurePolicy(timeout=0.5, retries=1, **FAST), plan=plan,
    )
    elapsed = time.monotonic() - t0
    assert rows[0] == "ok:a:0" and rows[2] == "ok:c:0"
    assert isinstance(rows[1], WorkloadFailure)
    assert (rows[1].kind, rows[1].attempts) == ("timeout", 2)
    assert elapsed < 20.0  # the 30 s hang never ran to completion


def test_failure_records_replay_identically():
    plan = FaultPlan(seed=9, specs=(
        FaultSpec(site=TOY_CRASH, key="b", times=-1),
        FaultSpec(site=TOY_EXCEPTION, key="d", times=-1),
    ))
    policy = FailurePolicy(retries=1, **FAST)
    first = run_failsafe(toy_task, ["a", "b", "c", "d"], jobs=3,
                         policy=policy, plan=plan)
    second = run_failsafe(toy_task, ["a", "b", "c", "d"], jobs=3,
                          policy=policy, plan=plan)
    assert first == second  # WorkloadFailure is a dataclass: deep equality


def test_fail_fast_raises_with_workload_attached():
    plan = FaultPlan(specs=(FaultSpec(site=TOY_EXCEPTION, key="b", times=-1),))
    with pytest.raises(WorkloadExecutionError) as ei:
        run_failsafe(
            toy_task, ["a", "b"], jobs=2,
            policy=FailurePolicy(retries=0, fail_fast=True), plan=plan,
        )
    assert ei.value.workload == "b"
    assert ei.value.kind == "exception"
    assert isinstance(ei.value.__cause__, ValueError)


def test_on_result_sees_successes_before_failures_abort_anything():
    seen = []
    plan = FaultPlan(specs=(FaultSpec(site=TOY_EXCEPTION, key="c", times=-1),))
    run_failsafe(
        toy_task, ["a", "b", "c"], jobs=2,
        policy=FailurePolicy(retries=0, **FAST), plan=plan,
        on_result=lambda item, res: seen.append((item, res)),
    )
    assert sorted(seen) == [("a", "ok:a:0"), ("b", "ok:b:0")]


def test_backoff_is_deterministic_bounded_and_seed_sensitive():
    p = FailurePolicy(backoff_base=0.1, backoff_cap=1.0, seed=3)
    vals = [p.backoff(k, "w") for k in (1, 2, 3, 10)]
    assert vals == [p.backoff(k, "w") for k in (1, 2, 3, 10)]
    for v in vals:
        assert 0.0 < v <= 1.0 * 1.25  # cap plus max jitter
    other = FailurePolicy(backoff_base=0.1, backoff_cap=1.0, seed=4)
    assert p.backoff(1, "w") != other.backoff(1, "w")


def _toy_records(pool):
    plan = FaultPlan(seed=9, specs=(
        FaultSpec(site=TOY_CRASH, key="b", times=-1),
        FaultSpec(site=TOY_EXCEPTION, key="d", times=-1),
    ))
    return run_failsafe(
        toy_task, ["a", "b", "c", "d"], jobs=2, pool=pool,
        policy=FailurePolicy(retries=1, **FAST), plan=plan,
    )


def test_failure_records_identical_across_pool_backends():
    # every backend normalises a dead worker to the same WorkerCrashed
    # error, so the full record set is deep-equal — not just equivalent
    serial = _toy_records("serial")
    assert _toy_records("thread") == serial
    assert _toy_records("process") == serial
    good, bad = split_failures(serial)
    assert good == ["ok:a:0", "ok:c:0"]
    assert {f.workload for f in bad} == {"b", "d"}
    crash = serial[1]
    assert (crash.kind, crash.error_type, crash.error) == (
        "crash", "WorkerCrashed", "worker exited with code 7")


# -- pipeline / evaluate_suite scenarios ---------------------------------------

SUBSET = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


@pytest.mark.skipif(
    os.environ.get("REPRO_POOL") == "serial",
    reason="the hang leg needs a preemptive backend; "
    "$REPRO_POOL forces serial",
)
def test_suite_survives_crash_and_hang_and_replays_identically():
    # the acceptance scenario: one workload hard-kills its worker, a
    # second wedges; the sweep still returns evaluations for the healthy
    # pair plus structured failure records — and the rerun is identical
    plan = FaultPlan(seed=11, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="164.gzip", times=-1),
        FaultSpec(site=SITE_WORKER_HANG, key="429.mcf", times=-1,
                  payload={"seconds": 30.0}),
    ))
    kwargs = dict(names=SUBSET, jobs=4, timeout=2.0, retries=1,
                  fault_plan=plan)
    rows = dict(zip(SUBSET, evaluate_suite(**kwargs)))

    assert isinstance(rows["164.gzip"], WorkloadFailure)
    assert (rows["164.gzip"].kind, rows["164.gzip"].attempts) == ("crash", 2)
    assert isinstance(rows["429.mcf"], WorkloadFailure)
    assert (rows["429.mcf"].kind, rows["429.mcf"].attempts) == ("timeout", 2)
    for name in ("470.lbm", "dwt53"):
        assert not isinstance(rows[name], WorkloadFailure)
        assert rows[name].name == name

    replay = dict(zip(SUBSET, evaluate_suite(**kwargs)))
    for name in ("164.gzip", "429.mcf"):
        assert replay[name] == rows[name]


def test_worker_crash_limited_to_first_attempt_recovers():
    plan = FaultPlan(seed=5, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="dwt53", times=-1,
                  attempts=(0,)),
    ))
    rows = evaluate_suite(names=["dwt53", "470.lbm"], jobs=2, retries=1,
                          fault_plan=plan)
    assert all(not isinstance(r, WorkloadFailure) for r in rows)
    assert [r.name for r in rows] == ["dwt53", "470.lbm"]


def test_serial_path_retries_and_quarantines():
    # jobs unset -> serial execution; the ambient injector makes every
    # interpreter run raise, so the workload quarantines in place.  The
    # in-memory profile memo would let evaluation skip the interpreter
    # (a site that never runs is never consulted) — start cold.
    clear_profile_cache()
    plan = FaultPlan(specs=(FaultSpec(site=SITE_INTERP_RUN, times=-1),))
    rows = evaluate_suite(names=["dwt53"], retries=1, fault_plan=plan)
    [f] = rows
    assert isinstance(f, WorkloadFailure)
    assert (f.kind, f.attempts) == ("exception", 2)
    assert f.error_type == "FaultInjected"


def test_pipeline_fail_fast_names_the_workload():
    plan = FaultPlan(specs=(
        FaultSpec(site=SITE_WORKER_EXCEPTION, key="dwt53", times=-1),
    ))
    with pytest.raises(WorkloadExecutionError) as ei:
        evaluate_suite(names=["dwt53", "470.lbm"], jobs=2, retries=0,
                       fail_fast=True, fault_plan=plan)
    assert ei.value.workload == "dwt53"
