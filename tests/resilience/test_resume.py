"""Crash-safe sweeps end to end: kill, resume, drain, trip.

The acceptance contract of the resilience tentpole:

* a sweep hard-killed mid-run (``os._exit`` at the ``journal.crash``
  site, torn record and all) resumes to output *byte-identical* to an
  uninterrupted run — evaluation records, semantic metrics and the
  attribution ledger — on every pool backend, without re-executing the
  workloads that already completed;
* SIGINT drains a pooled sweep within the drain deadline, exits with
  :data:`EXIT_DRAINED` and prints a resume command that works;
* the sweep-level circuit breaker aborts a doomed suite, journaling
  the abort and marking outstanding work ``aborted``;
* every exit path — including ``KeyboardInterrupt`` — closes the pool
  and restores the caller's ambient fault injector.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro import obs
from repro.exec import SerialPool
from repro.obs import export
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline, evaluate_suite
from repro.resilience import faults as _faults
from repro.resilience.journal import JournalError, RunJournal
from repro.resilience.runner import (
    FailurePolicy,
    WorkloadFailure,
    run_failsafe,
)
from repro.resilience.shutdown import (
    EXIT_DRAINED,
    DrainController,
    SweepDrained,
)
from repro.workloads import get
from repro.workloads.base import clear_profile_cache

from tests.test_pools import FAST, SUBSET, _flatten

SRC = os.path.abspath(os.path.join(os.path.dirname(repro.__file__), ".."))


def _suite(names=SUBSET):
    return [get(n) for n in names]


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _events(journal_dir, run_id):
    path = os.path.join(str(journal_dir), run_id + ".jsonl")
    events = []
    with open(path, "rb") as fh:
        for line in fh.read().splitlines():
            try:
                events.append(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                pass  # torn tail
    return events


def _after_resume(events):
    idx = max(i for i, e in enumerate(events) if e["event"] == "run_resumed")
    return events[idx + 1:]


# -- kill + resume byte-identity (the acceptance chaos scenario) -------------

_CRASH_SCRIPT = """\
import sys
from repro import obs
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.resilience.faults import SITE_JOURNAL_CRASH, FaultPlan, FaultSpec
from repro.workloads import get

pool, journal_dir, names = sys.argv[1], sys.argv[2], sys.argv[3].split(",")
obs.enable(reset=True)
# the second `completed` append hard-kills the driver, leaving 7 bytes
# of the record behind — the torn-tail case resume must survive
plan = FaultPlan(seed=5, specs=(
    FaultSpec(site=SITE_JOURNAL_CRASH, key="completed", after=1,
              payload={"exit_code": 23, "torn_bytes": 7}),
))
opts = PipelineOptions(no_cache=True, jobs=2, pool=pool, retries=1,
                       journal_dir=journal_dir, run_id="chaos",
                       fault_plan=plan)
NeedlePipeline(options=opts).evaluate_all([get(n) for n in names])
sys.exit(99)  # unreachable: the journal.crash site must fire first
"""


def _clean_sweep(pool):
    """(flattened rows, semantic-metrics JSON) for an uninterrupted run."""
    clear_profile_cache()
    obs.enable(reset=True)
    opts = PipelineOptions(no_cache=True, jobs=2, pool=pool, retries=1)
    rows = NeedlePipeline(options=opts).evaluate_all(_suite())
    semantic = export.semantic_json(None)
    obs.disable()
    obs.registry().clear()
    return [_flatten(r) for r in rows], semantic


@pytest.mark.chaos
@pytest.mark.parametrize("pool", ["serial", "process", "thread"])
def test_kill_and_resume_is_bitwise_identical(pool, tmp_path):
    clean_rows, clean_semantic = _clean_sweep(pool)

    script = tmp_path / "crash.py"
    script.write_text(_CRASH_SCRIPT)
    journal_dir = tmp_path / "journal"
    # output goes to files, not pipes: the os._exit kill orphans any
    # pool workers, which would hold a pipe open and stall the test
    with open(tmp_path / "crash.err", "w") as err:
        proc = subprocess.Popen(
            [sys.executable, str(script), pool, str(journal_dir),
             ",".join(SUBSET)],
            env=_subprocess_env(), stdout=subprocess.DEVNULL, stderr=err,
            start_new_session=True,
        )
        try:
            rc = proc.wait(timeout=300)
        finally:
            try:  # reap pool workers orphaned by the driver kill
                os.killpg(proc.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
    assert rc == 23, (tmp_path / "crash.err").read_text()

    # exactly one completed workload was durable before the kill, and
    # the partial second record is detected as torn
    wreck = RunJournal(str(journal_dir), "chaos").replay(truncate=False)
    assert len(wreck.completed) == 1
    assert wreck.torn_records == 1
    survivor = next(iter(wreck.completed))

    # resume in-process, without the fault plan (the fingerprint pins
    # *what* the sweep computes, not how it was killed)
    clear_profile_cache()
    obs.enable(reset=True)
    opts = PipelineOptions(no_cache=True, jobs=2, pool=pool, retries=1,
                           journal_dir=str(journal_dir), resume="chaos")
    rows = NeedlePipeline(options=opts).evaluate_all(_suite())
    semantic = export.semantic_json(None)
    resumed = obs.registry().get("resilience.resumed_workloads")
    assert resumed is not None
    assert sum(v for _k, v in resumed.series()) == 1
    obs.disable()
    obs.registry().clear()

    assert [_flatten(r) for r in rows] == clean_rows
    assert semantic == clean_semantic

    events = _events(journal_dir, "chaos")
    marker = [e for e in events if e["event"] == "run_resumed"]
    assert len(marker) == 1
    assert marker[0]["completed"] == 1
    assert marker[0]["torn_records"] == 1
    completed = [e["workload"] for e in events if e["event"] == "completed"]
    assert sorted(completed) == sorted(SUBSET)  # each exactly once overall
    tail = _after_resume(events)
    started = [e["workload"] for e in tail if e["event"] == "attempt_started"]
    # the durable workload was restored, not re-executed
    assert sorted(started) == sorted(set(SUBSET) - {survivor})
    finished = [e for e in tail if e["event"] == "run_finished"]
    assert len(finished) == 1
    assert finished[0]["completed"] == 2
    assert finished[0]["quarantined"] == 0


# -- SIGINT drain ------------------------------------------------------------


@pytest.mark.chaos
def test_sigint_drains_within_deadline_and_resume_command_works(tmp_path):
    journal_dir = tmp_path / "journal"
    plan_path = tmp_path / "hang.json"
    plan_path.write_text(json.dumps({
        "seed": 3,
        "specs": [{"site": "worker.hang", "key": "470.lbm", "times": -1,
                   "payload": {"seconds": 60}}],
    }))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "evaluate", ",".join(SUBSET),
         "--no-cache", "--jobs", "2", "--pool", "process",
         "--journal-dir", str(journal_dir), "--run-id", "drain1",
         "--drain-timeout", "2", "--retries", "0",
         "--fault-plan", str(plan_path)],
        env=_subprocess_env(), stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True,
    )
    try:
        # wait until the two healthy workloads are journaled (the third
        # hangs in its worker), then interrupt the sweep
        journal = os.path.join(str(journal_dir), "drain1.jsonl")
        deadline = time.monotonic() + 240
        while time.monotonic() < deadline:
            try:
                done = sum(
                    1 for e in _events(journal_dir, "drain1")
                    if e["event"] == "completed")
            except OSError:
                done = 0
            if done >= 2 and os.path.exists(journal):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.1)
        assert proc.poll() is None, proc.communicate()[1]
        signalled = time.monotonic()
        proc.send_signal(signal.SIGINT)
        stdout, stderr = proc.communicate(timeout=60)
        drained_in = time.monotonic() - signalled
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    assert proc.returncode == EXIT_DRAINED, stderr
    # the 2s drain deadline was honoured (generous slack for teardown)
    assert drained_in < 30
    assert "sweep interrupted" in stderr
    assert "resume with:" in stderr
    assert "--resume drain1" in stderr
    assert "--journal-dir %s" % journal_dir in stderr

    events = _events(journal_dir, "drain1")
    aborts = [e for e in events if e["event"] == "aborted"]
    assert aborts and aborts[-1]["reason"] == "drain"
    assert aborts[-1]["outstanding"] == ["470.lbm"]

    # the printed resume command works: run it plan-free and the hung
    # workload completes while the journaled two are restored
    rows = evaluate_suite(options=PipelineOptions(
        no_cache=True, journal_dir=str(journal_dir), resume="drain1"))
    assert [r.name for r in rows] == SUBSET
    assert not any(isinstance(r, WorkloadFailure) for r in rows)
    tail = _after_resume(_events(journal_dir, "drain1"))
    started = [e["workload"] for e in tail if e["event"] == "attempt_started"]
    assert started == ["470.lbm"]


# -- circuit breaker ---------------------------------------------------------


def _boom(item, plan, attempt):
    raise ValueError("boom:%s" % item)


def test_circuit_breaker_trips_on_total_failures(tmp_path):
    obs.enable(reset=True)
    events = []
    try:
        rows = run_failsafe(
            _boom, ["a", "b", "c", "d"], pool=SerialPool(),
            policy=FailurePolicy(retries=0, max_total_failures=2, **FAST),
            on_event=lambda event, key, **data: events.append(
                (event, key, data)),
        )
        trips = obs.registry().get("resilience.circuit_breaker_trips")
        assert trips is not None
        assert sum(v for _k, v in trips.series()) == 1
    finally:
        obs.disable()
        obs.registry().clear()

    assert all(isinstance(r, WorkloadFailure) for r in rows)
    assert [r.kind for r in rows] == [
        "exception", "exception", "aborted", "aborted"]
    assert {r.error_type for r in rows[2:]} == {"CircuitBreaker"}
    assert rows[2].error == "max_total_failures=2 reached"
    opened = [e for e in events if e[0] == "circuit_open"]
    assert len(opened) == 1
    assert opened[0][2]["reason"] == "max_total_failures=2 reached"
    assert opened[0][2]["outstanding"] == ["c", "d"]


def _flaky_alternating(item, plan, attempt):
    if attempt == 0 and item in ("a", "c"):
        raise ValueError("first attempt fails")
    return "ok:%s" % item


def test_success_resets_the_consecutive_failure_streak():
    rows = run_failsafe(
        _flaky_alternating, ["a", "b", "c", "d"], pool=SerialPool(),
        policy=FailurePolicy(retries=1, max_consecutive_failures=2, **FAST),
    )
    # two failures happen, but never back to back: no trip
    assert rows == ["ok:a", "ok:b", "ok:c", "ok:d"]


def test_circuit_breaker_trips_on_consecutive_failures():
    rows = run_failsafe(
        _boom, ["a", "b"], pool=SerialPool(),
        policy=FailurePolicy(retries=10, max_consecutive_failures=3, **FAST),
    )
    assert all(isinstance(r, WorkloadFailure) for r in rows)
    assert {r.kind for r in rows} == {"aborted"}
    assert sum(r.attempts for r in rows) == 3  # stopped at the third charge


def test_journaled_sweep_records_a_circuit_abort(tmp_path):
    plan = _faults.FaultPlan(seed=9, specs=(
        _faults.FaultSpec(site=_faults.SITE_WORKER_EXCEPTION, key="164.gzip",
                          times=-1),
    ))
    opts = PipelineOptions(
        no_cache=True, journal_dir=str(tmp_path), run_id="trip",
        fault_plan=plan, retries=0, max_total_failures=1)
    rows = NeedlePipeline(options=opts).evaluate_all(
        _suite(["164.gzip", "470.lbm"]))
    assert isinstance(rows[0], WorkloadFailure) and rows[0].kind == "exception"
    assert isinstance(rows[1], WorkloadFailure) and rows[1].kind == "aborted"
    events = _events(tmp_path, "trip")
    aborted = [e for e in events if e["event"] == "aborted"]
    assert aborted and "max_total_failures=1" in aborted[0]["reason"]
    assert aborted[0]["outstanding"] == ["470.lbm"]


# -- drain controller (no signals involved) ----------------------------------


def test_drain_request_mid_sweep_raises_sweep_drained():
    drain = DrainController(timeout=5)

    def task(item, plan, attempt):
        if item == "a" and attempt == 0:
            drain.request()
            raise ValueError("fail and back off")
        return "ok:%s" % item

    obs.enable(reset=True)
    try:
        with pytest.raises(SweepDrained) as excinfo:
            run_failsafe(
                task, ["a", "b", "c"], pool=SerialPool(),
                policy=FailurePolicy(retries=3, **FAST), drain=drain)
        gauge = obs.registry().get("resilience.drain_seconds")
        assert gauge is not None
    finally:
        obs.disable()
        obs.registry().clear()

    exc = excinfo.value
    assert isinstance(exc, KeyboardInterrupt)  # unknowing callers see ^C
    assert exc.outstanding == ["a"]  # backed off, never resubmitted
    assert exc.completed == 2  # b and c were already in flight: drained
    assert exc.drain_seconds >= 0.0


def test_drain_requested_before_start_stops_everything():
    drain = DrainController(timeout=0.5)
    drain.request(signal.SIGTERM)
    with pytest.raises(SweepDrained) as excinfo:
        run_failsafe(
            lambda item, plan, attempt: "ok", ["a", "b"], pool=SerialPool(),
            drain=drain)
    assert excinfo.value.outstanding == ["a", "b"]
    assert excinfo.value.completed == 0
    assert drain.signum == signal.SIGTERM


def test_resume_command_needs_a_run_id():
    assert SweepDrained().resume_command() is None
    exc = SweepDrained(outstanding=["x"], run_id="r7", journal_dir="/j")
    assert exc.resume_command() == \
        "python -m repro evaluate --resume r7 --journal-dir /j"
    assert EXIT_DRAINED == 75


# -- teardown on every exit path (KeyboardInterrupt included) ----------------


class _ProbePool(SerialPool):
    """Records whether the runner closed it, and how."""

    def __init__(self):
        super().__init__(jobs=1)
        self.closed = False
        self.closed_graceful = None

    def close(self, graceful=True):
        self.closed = True
        self.closed_graceful = graceful
        super().close(graceful)


def test_keyboard_interrupt_in_task_closes_pool_and_restores_faults():
    pool = _ProbePool()

    def task(item, plan, attempt):
        # leak an injector install, as interrupted task code might
        _faults.install(_faults.FaultPlan(seed=99))
        raise KeyboardInterrupt

    assert _faults.active() is None
    with pytest.raises(KeyboardInterrupt):
        run_failsafe(task, ["a", "b"], pool=pool)
    assert pool.closed
    assert pool.closed_graceful is False  # work was still pending
    assert _faults.active() is None  # ambient injector restored


class _InterruptedPool(_ProbePool):
    """A backend whose wait is interrupted (Ctrl-C inside the pool)."""

    def wait(self, timeout=None):
        raise KeyboardInterrupt


def test_keyboard_interrupt_in_pool_wait_still_closes_the_pool():
    pool = _InterruptedPool()
    with pytest.raises(KeyboardInterrupt):
        run_failsafe(lambda item, plan, attempt: "ok", ["a"], pool=pool)
    assert pool.closed


def test_ambient_injector_survives_a_clean_sweep():
    ambient = _faults.install(_faults.FaultPlan(seed=4))
    try:
        rows = run_failsafe(
            lambda item, plan, attempt: "ok:%s" % item, ["a"],
            pool=SerialPool())
        assert rows == ["ok:a"]
        assert _faults.active() is ambient
    finally:
        _faults.uninstall()


# -- pipeline journaling basics ----------------------------------------------


def test_journaled_sweep_writes_full_lifecycle(tmp_path):
    opts = PipelineOptions(no_cache=True, journal_dir=str(tmp_path),
                           run_id="r1")
    pipe = NeedlePipeline(options=opts)
    rows = pipe.evaluate_all(_suite(["dwt53", "164.gzip"]))
    assert [r.name for r in rows] == ["dwt53", "164.gzip"]

    events = _events(tmp_path, "r1")
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_finished"
    assert [e["workload"] for e in events if e["event"] == "scheduled"] == \
        ["dwt53", "164.gzip"]
    assert sorted(
        e["workload"] for e in events if e["event"] == "completed"
    ) == ["164.gzip", "dwt53"]
    finished = events[-1]
    assert finished["completed"] == 2
    assert finished["quarantined"] == 0
    assert finished["records"] > 0
    assert finished["fsync_seconds"] >= 0.0
    # every completed record points at a loadable payload
    journal = RunJournal(str(tmp_path), "r1")
    for e in events:
        if e["event"] == "completed":
            row = journal.load_payload(e["payload"])
            assert row is not None and row[0].name == e["workload"]


def test_resume_restores_rows_without_reexecuting(tmp_path):
    names = ["dwt53", "164.gzip"]
    opts = PipelineOptions(no_cache=True, journal_dir=str(tmp_path),
                           run_id="r1")
    first = NeedlePipeline(options=opts).evaluate_all(_suite(names))

    obs.enable(reset=True)
    try:
        opts = PipelineOptions(no_cache=True, journal_dir=str(tmp_path),
                               resume="r1")
        again = NeedlePipeline(options=opts).evaluate_all(_suite(names))
        resumed = obs.registry().get("resilience.resumed_workloads")
        assert resumed is not None
        assert sum(v for _k, v in resumed.series()) == 2
    finally:
        obs.disable()
        obs.registry().clear()

    assert [_flatten(r) for r in again] == [_flatten(r) for r in first]
    tail = _after_resume(_events(tmp_path, "r1"))
    assert [e for e in tail if e["event"] == "attempt_started"] == []
    assert tail[-1]["event"] == "run_finished"
    assert tail[-1]["completed"] == 0  # nothing needed re-running


def test_resume_without_journal_dir_is_an_error(monkeypatch):
    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    opts = PipelineOptions(no_cache=True, resume="ghost")
    with pytest.raises(JournalError, match="journaling needs a directory"):
        NeedlePipeline(options=opts).evaluate_all(_suite(["dwt53"]))


def test_duplicate_run_id_is_an_error(tmp_path):
    opts = PipelineOptions(no_cache=True, journal_dir=str(tmp_path),
                           run_id="r1")
    NeedlePipeline(options=opts).evaluate_all(_suite(["dwt53"]))
    with pytest.raises(JournalError, match="already has a journal"):
        NeedlePipeline(options=opts).evaluate_all(_suite(["dwt53"]))


def test_journal_dir_env_enables_journaling(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_JOURNAL_DIR", str(tmp_path))
    opts = PipelineOptions(no_cache=True, run_id="envrun")
    NeedlePipeline(options=opts).evaluate_all(_suite(["dwt53"]))
    assert os.path.exists(os.path.join(str(tmp_path), "envrun.jsonl"))


def test_evaluate_suite_resume_replays_journaled_manifest(tmp_path):
    names = ["dwt53", "164.gzip"]
    first = evaluate_suite(names=names, options=PipelineOptions(
        no_cache=True, journal_dir=str(tmp_path), run_id="r1"))
    # names omitted: the journaled manifest decides what runs
    again = evaluate_suite(options=PipelineOptions(
        no_cache=True, journal_dir=str(tmp_path), resume="r1"))
    assert [r.name for r in again] == names
    assert [_flatten(r) for r in again] == [_flatten(r) for r in first]


# -- CLI surface -------------------------------------------------------------


def test_cli_run_id_without_journal_dir_exits_2(capsys, monkeypatch):
    from repro.cli import main

    monkeypatch.delenv("REPRO_JOURNAL_DIR", raising=False)
    rc = main(["evaluate", "dwt53", "--no-cache", "--run-id", "x"])
    assert rc == 2
    assert "journaling needs a directory" in capsys.readouterr().err


def test_cli_resume_rejects_an_explicit_workload(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="drop the workload argument"):
        main(["evaluate", "dwt53", "--no-cache",
              "--journal-dir", str(tmp_path), "--resume", "r1"])


def test_cli_resume_of_unknown_run_exits_with_message(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit, match="no journal for run id"):
        main(["evaluate", "--no-cache", "--journal-dir", str(tmp_path),
              "--resume", "ghost"])
