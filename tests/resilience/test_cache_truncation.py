"""Chaos scenario: a truncated cache payload is a clean miss.

The ``cache.truncated_payload`` site makes ``put()`` ship a cut-short
pickle to disk — the on-disk shape of a crash mid-write that somehow
survived the atomic-replace protocol, or of bit rot.  The defensive
``get()`` path must treat it as a miss, evict the entry, and let the
pipeline recompute and overwrite.
"""

from __future__ import annotations

import os

import pytest

from repro.artifacts import EVALUATION_KIND, PROFILE_KIND, ArtifactCache
from repro.pipeline import evaluate_suite
from repro.resilience import faults
from repro.resilience.faults import SITE_CACHE_TRUNCATE, FaultPlan, FaultSpec

pytestmark = pytest.mark.chaos

KEY = "ab" + "0" * 62  # well-formed sha256-shaped key


def _entry_path(cache, kind, key):
    return os.path.join(cache.root, kind, key[:2], key + ".pkl")


def test_truncated_payload_is_clean_miss_and_evicted(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    plan = FaultPlan(specs=(
        FaultSpec(site=SITE_CACHE_TRUNCATE, key=PROFILE_KIND, times=1,
                  payload={"keep": 5}),
    ))
    with faults.installed(plan):
        assert cache.put(PROFILE_KIND, KEY, {"big": list(range(100))})
        path = _entry_path(cache, PROFILE_KIND, KEY)
        assert os.path.getsize(path) == 5  # the write really was cut short

        assert cache.get(PROFILE_KIND, KEY) is None  # miss, not an exception
        assert cache.misses == 1 and cache.hits == 0
        assert not os.path.exists(path)  # evicted

        # recompute-and-overwrite works: the spec's times budget is spent
        assert cache.put(PROFILE_KIND, KEY, {"big": list(range(100))})
        assert cache.get(PROFILE_KIND, KEY) == {"big": list(range(100))}


def test_truncation_site_keys_by_kind(tmp_path):
    cache = ArtifactCache(str(tmp_path / "cache"))
    plan = FaultPlan(specs=(
        FaultSpec(site=SITE_CACHE_TRUNCATE, key=PROFILE_KIND, times=-1,
                  payload={"keep": 1}),
    ))
    with faults.installed(plan):
        cache.put(PROFILE_KIND, KEY, [1, 2, 3])
        cache.put(EVALUATION_KIND, KEY, [4, 5, 6])
    assert cache.get(PROFILE_KIND, KEY) is None
    assert cache.get(EVALUATION_KIND, KEY) == [4, 5, 6]


def test_pipeline_recomputes_through_truncated_artifacts(tmp_path):
    # every artifact written during the sweep is truncated; the *next*
    # sweep sees only corrupt entries, misses cleanly, and still
    # produces the same evaluation
    plan = FaultPlan(specs=(
        FaultSpec(site=SITE_CACHE_TRUNCATE, times=-1, payload={"keep": 7}),
    ))
    cache_dir = str(tmp_path / "cache")
    with faults.installed(plan):
        first = evaluate_suite(names=["dwt53"], cache_dir=cache_dir)
    second = evaluate_suite(names=["dwt53"], cache_dir=cache_dir)
    assert first[0].name == second[0].name == "dwt53"
    assert second[0].braid is not None
