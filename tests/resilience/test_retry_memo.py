"""Chaos scenarios for the simulation memo and trace kernels.

The retry contract of :func:`run_failsafe` meets the simulation memo
here: a workload whose first attempt dies must (a) produce outcomes
byte-identical to a run nobody faulted, and (b) reuse the calibration
its earlier work already persisted instead of replaying the memory
stream again.  The trace-kernel equivalence must also hold under seeded
fault plans, not just on sunny-day sweeps.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro import obs, workloads
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline, evaluate_suite
from repro.resilience.faults import (
    SITE_WORKER_EXCEPTION,
    FaultPlan,
    FaultSpec,
)
from repro.resilience.runner import WorkloadFailure

pytestmark = pytest.mark.chaos

SUBSET = ["dwt53", "470.lbm"]


def _outcome_fields(outcome):
    return None if outcome is None else vars(outcome).copy()


def _flatten(ev):
    return {
        "summary": vars(ev.summary).copy(),
        "path_oracle": _outcome_fields(ev.path_oracle),
        "path_history": _outcome_fields(ev.path_history),
        "braid": _outcome_fields(ev.braid),
        "hls": _outcome_fields(ev.hls),
        "braid_schedule": _outcome_fields(ev.braid_schedule),
    }


def test_retried_workload_with_memo_matches_clean_run(tmp_path):
    reference = [
        _flatten(ev)
        for ev in NeedlePipeline(
            options=PipelineOptions(no_cache=True)
        ).evaluate_all([workloads.get(n) for n in SUBSET])
    ]

    plan = FaultPlan(seed=23, specs=(
        FaultSpec(site=SITE_WORKER_EXCEPTION, key="dwt53", times=-1,
                  attempts=(0,)),
    ))
    rows = evaluate_suite(
        names=SUBSET, jobs=2, retries=1,
        cache_dir=str(tmp_path / "cache"), fault_plan=plan,
    )
    assert all(not isinstance(r, WorkloadFailure) for r in rows)
    assert [_flatten(ev) for ev in rows] == reference


def test_retry_reuses_persisted_calibration(tmp_path):
    cache_dir = str(tmp_path / "cache")

    # a clean sweep persists profiles + calibration/path-cost tables ...
    clean = evaluate_suite(names=SUBSET, cache_dir=cache_dir)
    # ... then the cached *evaluations* are wiped, so the chaos sweep
    # below must re-simulate from the persisted sub-simulation tables
    for path in glob.glob(
        os.path.join(cache_dir, "evaluation", "**", "*.pkl"), recursive=True
    ):
        os.unlink(path)

    plan = FaultPlan(seed=29, specs=(
        FaultSpec(site=SITE_WORKER_EXCEPTION, key="dwt53", times=-1,
                  attempts=(0,)),
    ))
    with obs.scoped() as reg:
        rows = evaluate_suite(
            names=SUBSET, jobs=2, retries=1,
            cache_dir=cache_dir, fault_plan=plan,
        )
    assert all(not isinstance(r, WorkloadFailure) for r in rows)
    # retried and healthy workloads alike were served their calibration —
    # no worker replayed the memory stream
    assert reg.counter("simcache.misses").value(table="calibration") == 0
    assert reg.counter("simcache.hits").value(table="calibration") > 0
    assert [_flatten(ev) for ev in rows] == [_flatten(ev) for ev in clean]


def test_kernel_modes_agree_under_fault_plan():
    plan = FaultPlan(seed=31, specs=(
        FaultSpec(site=SITE_WORKER_EXCEPTION, key="470.lbm", times=-1,
                  attempts=(0,)),
    ))

    def run(mode):
        return evaluate_suite(options=PipelineOptions(
            jobs=2, no_cache=True, retries=1, fault_plan=plan,
            trace_kernels=mode,
        ), names=SUBSET)

    rle, events = run("rle"), run("events")
    for a, b in zip(rle, events):
        assert not isinstance(a, WorkloadFailure)
        assert _flatten(a) == _flatten(b)
