"""Property tests: frame atomicity survives injected faults.

Under arbitrary combinations of injected store corruption, guard flips
and mid-frame exceptions, a frame invocation either commits or leaves
memory *byte-for-byte* identical to before the call — and the whole
scenario replays identically from the same plan seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.frames import (
    FrameBudgetExhausted,
    FrameExecutor,
    build_frame,
)
from repro.interp import Interpreter
from repro.ir import Constant, I32, IRBuilder, Module, verify_function
from repro.profiling import rank_paths
from repro.regions import path_to_region
from repro.resilience import faults
from repro.resilience.faults import (
    SITE_FRAME_EXCEPTION,
    SITE_FRAME_GUARD_FLIP,
    SITE_FRAME_STORE_CORRUPT,
    FaultInjected,
    FaultPlan,
    FaultSpec,
)
from tests.conftest import profile_function

pytestmark = pytest.mark.chaos


def _kernel():
    """Store-heavy loop with a data-dependent guard on the hot path."""
    m = Module()
    src = m.add_global("src", I32, 64, init=[v % 13 - 2 for v in range(64)])
    dst = m.add_global("dst", I32, 64)
    fn = m.add_function("k", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    hot = b.add_block("hot")
    cold = b.add_block("cold")
    latch = b.add_block("latch")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    cond = b.icmp("slt", i, fn.arg("n"))
    b.condbr(cond, body, exit_)

    b.set_block(body)
    a_in = b.gep(src, i, 4)
    v = b.load(I32, a_in)
    pos = b.icmp("sgt", v, 0)
    b.condbr(pos, hot, cold)

    b.set_block(hot)
    tripled = b.mul(v, 3)
    a_out = b.gep(dst, i, 4)
    b.store(tripled, a_out)
    b.br(latch)

    b.set_block(cold)
    b.br(latch)

    b.set_block(latch)
    i2 = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(latch, i2)

    b.set_block(exit_)
    b.ret(i)
    verify_function(fn)
    return m, fn


_M, _FN = _kernel()
_PP, _EP = profile_function(_M, _FN, [[64]])
_FRAME = build_frame(path_to_region(_FN, rank_paths(_PP)[0]))
_PHI_I = _FRAME.region.entry.phis[0]


def _invoke(plan, i, n, step_budget=None):
    """One frame invocation under ``plan`` on a fresh interpreter.

    Returns ``(outcome, diff)`` where outcome is the FrameResult success
    flag, or the exception class name when the invocation raised.
    """
    interp = Interpreter(_M)
    snap = interp.memory.snapshot()
    execu = FrameExecutor(
        interp.memory, interp.global_base, step_budget=step_budget
    )
    with faults.installed(plan):
        try:
            result = execu.run(_FRAME, {_PHI_I: i, _FN.arg("n"): n})
        except (FaultInjected, FrameBudgetExhausted) as exc:
            return type(exc).__name__, interp.memory.diff(snap)
    return result.success, interp.memory.diff(snap)


@settings(max_examples=100, deadline=None)
@given(
    i=st.integers(-4, 80),
    n=st.integers(0, 64),
    seed=st.integers(0, 2**16),
    p_flip=st.floats(0.0, 1.0),
    p_exc=st.floats(0.0, 1.0),
    corrupt=st.booleans(),
)
def test_rollback_is_byte_identical_under_faults(
    i, n, seed, p_flip, p_exc, corrupt
):
    specs = [
        FaultSpec(site=SITE_FRAME_GUARD_FLIP, times=-1, probability=p_flip),
        FaultSpec(site=SITE_FRAME_EXCEPTION, times=-1, probability=p_exc),
    ]
    if corrupt:
        specs.append(
            FaultSpec(site=SITE_FRAME_STORE_CORRUPT, times=-1,
                      probability=0.5)
        )
    plan = FaultPlan(seed=seed, specs=tuple(specs))

    outcome, diff = _invoke(plan, i, n)
    if outcome is not True:
        # abort — scripted (guard failure) or exceptional (injected
        # fault): memory must be exactly as before the invocation
        assert diff == {}

    # determinism: the same plan on a fresh interpreter replays the same
    # outcome and the same memory effect
    outcome2, diff2 = _invoke(plan, i, n)
    assert outcome2 == outcome
    assert diff2 == diff


def test_step_budget_aborts_and_rolls_back():
    # i=3 drives the hot path (src[3] = 1 > 0): header, body, hot run
    # within a budget of 3 — the store commits speculatively — then the
    # 4th block step trips the budget and the store must be undone
    outcome, diff = _invoke(FaultPlan(), 3, 64, step_budget=3)
    assert outcome == "FrameBudgetExhausted"
    assert diff == {}


def test_step_budget_zero_cost_default_untouched():
    outcome, diff = _invoke(FaultPlan(), 3, 64)
    assert outcome is True
    assert len(diff) == 1  # exactly the one hot-path store


def test_exception_abort_is_counted_in_obs():
    plan = FaultPlan(specs=(
        FaultSpec(site=SITE_FRAME_EXCEPTION, key="hot", times=-1),
    ))
    obs.disable()
    obs.registry().clear()
    obs.enable(reset=True)
    try:
        outcome, diff = _invoke(plan, 3, 64)
        assert outcome == "FaultInjected"
        assert diff == {}
        reg = obs.registry()
        kind = _FRAME.region.kind
        assert reg.counter("frames.aborts").value(region=kind) == 1
        assert reg.counter("frames.exception_aborts").value(region=kind) == 1
        assert reg.counter("resilience.faults_injected").value(
            site=SITE_FRAME_EXCEPTION) == 1
    finally:
        obs.disable()
        obs.registry().clear()
