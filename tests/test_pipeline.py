from repro import NeedlePipeline, workloads


def test_analyse_produces_all_artifacts():
    p = NeedlePipeline()
    a = p.analyse(workloads.get("470.lbm"))
    assert a.name == "470.lbm"
    assert a.ranked and a.braids
    assert a.path_frame is not None and a.braid_frame is not None
    assert a.top_path is a.ranked[0]
    assert a.top_braid is a.braids[0]


def test_analyse_is_cached():
    p = NeedlePipeline()
    w = workloads.get("482.sphinx3")
    assert p.analyse(w) is p.analyse(w)
    assert p.evaluate(w) is p.evaluate(w)


def test_evaluate_produces_outcomes():
    p = NeedlePipeline()
    ev = p.evaluate(workloads.get("482.sphinx3"))
    assert ev.path_oracle is not None
    assert ev.path_history is not None
    assert ev.braid is not None
    assert ev.hls is not None
    assert ev.braid_schedule is not None
    # sphinx3 is a clean FP kernel: all strategies should win big
    assert ev.path_oracle.performance_improvement > 0.5
    assert ev.braid.performance_improvement > 0.5
    assert ev.braid.energy_reduction > 0.15
    assert ev.path_oracle.failures == 0


def test_braid_rescues_unpredictable_workload():
    """The paper's blackscholes story: path offload flat/negative, braid
    strongly positive because merged paths stop failing."""
    p = NeedlePipeline()
    ev = p.evaluate(workloads.get("blackscholes"))
    assert ev.path_oracle.performance_improvement < 0.1
    assert ev.braid.performance_improvement > 0.3


def test_pathological_trio_degrades_under_history_predictor():
    p = NeedlePipeline()
    ev = p.evaluate(workloads.get("freqmine"))
    assert ev.path_history.performance_improvement < -0.05


def test_oracle_upper_bounds_history_on_predictable_workload():
    p = NeedlePipeline()
    ev = p.evaluate(workloads.get("183.equake"))
    assert (
        ev.path_oracle.performance_improvement
        >= ev.path_history.performance_improvement - 1e-9
    )
    assert ev.path_history.predictor_precision > 0.95


def test_evaluate_all_covers_suite():
    p = NeedlePipeline()
    subset = [workloads.get(n) for n in ("470.lbm", "403.gcc")]
    evs = p.evaluate_all(subset)
    assert [e.name for e in evs] == ["470.lbm", "403.gcc"]
    # lbm (wide FP) beats gcc (no ILP) by a wide margin
    assert (
        evs[0].braid.performance_improvement
        > evs[1].braid.performance_improvement
    )


def test_lbm_dominates_hls_area():
    p = NeedlePipeline()
    lbm = p.evaluate(workloads.get("470.lbm"))
    gzip = p.evaluate(workloads.get("164.gzip"))
    assert lbm.hls.alm_fraction > 5 * gzip.hls.alm_fraction
    assert gzip.hls.fits
