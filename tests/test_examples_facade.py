"""The examples only lean on the public façade.

``repro.__all__`` is the supported surface: the top-level names plus the
exported subpackages.  Examples are the first thing users copy, so they
must not model deep imports (``repro.sim.config``,
``repro.workloads.base``, ...) that the project reserves the right to
rearrange.  This test parses every example with :mod:`ast` — no example
code runs — and rejects any import that reaches past one level.
"""

import ast
import os

import pytest

import repro

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

EXAMPLE_FILES = sorted(
    name for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py") and not name.startswith("_")
)


def _facade_violations(path):
    """Imports in ``path`` that step outside the public façade."""
    with open(path) as fh:
        tree = ast.parse(fh.read(), filename=path)
    violations = []

    def check_module(node, module):
        if module != "repro" and not module.startswith("repro."):
            return  # stdlib / third-party imports are out of scope
        parts = module.split(".")
        if len(parts) > 2:
            violations.append(
                "line %d: deep import %r (only repro.<name> is public)"
                % (node.lineno, module)
            )
        elif len(parts) == 2 and parts[1] not in repro.__all__:
            violations.append(
                "line %d: %r is not in repro.__all__" % (node.lineno, module)
            )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                check_module(node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import — not a repro façade concern
                continue
            module = node.module or ""
            check_module(node, module)
            if module == "repro":
                for alias in node.names:
                    if alias.name not in repro.__all__:
                        violations.append(
                            "line %d: 'from repro import %s' is not in "
                            "repro.__all__" % (node.lineno, alias.name)
                        )
    return violations


def test_examples_exist():
    assert EXAMPLE_FILES, "examples/ directory is empty?"


@pytest.mark.parametrize("name", EXAMPLE_FILES)
def test_example_uses_public_facade_only(name):
    violations = _facade_violations(os.path.join(EXAMPLES_DIR, name))
    assert not violations, "%s steps outside the public façade:\n%s" % (
        name, "\n".join(violations)
    )
