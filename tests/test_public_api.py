"""Locks the public façade: the names `import repro` promises to export,
that each resolves, and that historical deep imports keep working."""

import repro

#: the supported surface — additions are reviewed here, removals are breaking
PUBLIC_API = [
    "ArtifactCache",
    "DEFAULT_CONFIG",
    "EXIT_DRAINED",
    "FaultPlan",
    "FaultSpec",
    "NeedlePipeline",
    "POOL_BACKENDS",
    "POOL_CHOICES",
    "PipelineOptions",
    "Pool",
    "ProcessPool",
    "RunJournal",
    "SerialPool",
    "SweepDrained",
    "SystemConfig",
    "ThreadPool",
    "Workload",
    "WorkloadAnalysis",
    "WorkloadEvaluation",
    "WorkloadFailure",
    "accel",
    "analysis",
    "evaluate_suite",
    "exec",
    "frames",
    "interp",
    "ir",
    "load_workload",
    "make_pool",
    "obs",
    "profiling",
    "regions",
    "reporting",
    "resilience",
    "sim",
    "suite",
    "transforms",
    "workloads",
]


def test_all_matches_locked_surface():
    assert repro.__all__ == PUBLIC_API


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name) is not None, name


def test_load_workload_is_registry_get():
    w = repro.load_workload("470.lbm")
    assert isinstance(w, repro.Workload)
    assert w.name == "470.lbm"


def test_suite_returns_full_or_named_subset():
    full = repro.suite()
    assert len(full) == 29
    spec = repro.suite("spec")
    assert spec and all(w.suite == "spec" for w in spec)
    assert set(w.name for w in spec) < set(w.name for w in full)


def test_facade_classes_are_the_canonical_ones():
    from repro.options import PipelineOptions
    from repro.pipeline import NeedlePipeline, evaluate_suite
    from repro.sim.config import SystemConfig

    assert repro.NeedlePipeline is NeedlePipeline
    assert repro.PipelineOptions is PipelineOptions
    assert repro.SystemConfig is SystemConfig
    assert repro.evaluate_suite is evaluate_suite


def test_evaluate_suite_facade(tmp_path):
    rows = repro.evaluate_suite(
        names=["dwt53"], cache_dir=str(tmp_path / "cache")
    )
    assert len(rows) == 1
    assert rows[0].name == "dwt53"


def test_deep_imports_keep_working():
    from repro.interp.interpreter import Interpreter  # noqa: F401
    from repro.obs.metrics import MetricsRegistry  # noqa: F401
    from repro.pipeline import NeedlePipeline  # noqa: F401
    from repro.profiling.path_profile import PathProfiler  # noqa: F401
    from repro.sim.offload import OffloadSimulator  # noqa: F401
    from repro.workloads.base import profile_workload  # noqa: F401


def test_internal_modules_declare_all():
    import repro.artifacts
    import repro.cli
    import repro.exec
    import repro.exec.pools
    import repro.exec.worker
    import repro.obs
    import repro.options
    import repro.pipeline
    import repro.profiling.path_profile
    import repro.resilience
    import repro.resilience.faults
    import repro.resilience.journal
    import repro.resilience.runner
    import repro.resilience.shutdown
    import repro.sim.offload
    import repro.workloads.base

    for mod in (
        repro.artifacts,
        repro.cli,
        repro.exec,
        repro.exec.pools,
        repro.exec.worker,
        repro.obs,
        repro.options,
        repro.pipeline,
        repro.profiling.path_profile,
        repro.resilience,
        repro.resilience.faults,
        repro.resilience.journal,
        repro.resilience.runner,
        repro.resilience.shutdown,
        repro.sim.offload,
        repro.workloads.base,
    ):
        assert isinstance(mod.__all__, list) and mod.__all__, mod.__name__
        for name in mod.__all__:
            assert hasattr(mod, name), "%s.%s" % (mod.__name__, name)
