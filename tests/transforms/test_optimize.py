from repro.interp import Interpreter
from repro.ir import (
    Constant,
    F64,
    I32,
    IRBuilder,
    Module,
    verify_function,
)
from repro.transforms import (
    constant_fold,
    dead_code_eliminate,
    optimize,
    simplify_cfg,
)


def _const_tree_module():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    x = b.add(2, 3)  # 5
    y = b.mul(x, 4)  # 20
    z = b.add(fn.arg("a"), y)
    dead = b.mul(fn.arg("a"), 99)  # unused
    b.ret(z)
    verify_function(fn)
    return m, fn


def test_constant_fold_collapses_tree():
    m, fn = _const_tree_module()
    ref = Interpreter(m).run("f", [7])
    n = constant_fold(fn)
    assert n == 2
    verify_function(fn)
    assert Interpreter(m).run("f", [7]) == ref == 27
    # the add now consumes a literal 20
    add = [i for i in fn.instructions() if i.opcode == "add"][0]
    assert isinstance(add.operands[1], Constant)
    assert add.operands[1].value == 20


def test_dce_removes_unused():
    m, fn = _const_tree_module()
    before = fn.instruction_count
    removed = dead_code_eliminate(fn)
    assert removed == 1  # the unused mul
    assert fn.instruction_count == before - 1
    verify_function(fn)


def test_dce_keeps_side_effects():
    m = Module()
    g = m.add_global("out", I32, 4)
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    addr = b.gep(g, 0, 4)
    b.store(fn.arg("a"), addr)
    unused_load = b.load(I32, addr)
    b.ret(0)
    verify_function(fn)
    dead_code_eliminate(fn)
    opcodes = [i.opcode for i in fn.instructions()]
    assert "store" in opcodes
    # the load is value-dead and removable (loads have no side effects here)
    assert "load" not in opcodes


def test_simplify_cfg_folds_constant_branch():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    t = b.add_block("t")
    e = b.add_block("e")
    merge = b.add_block("merge")
    b.set_block(entry)
    b.condbr(Constant(__import__("repro.ir", fromlist=["I1"]).I1, 1), t, e)
    b.set_block(t)
    x1 = b.add(fn.arg("a"), 1)
    b.br(merge)
    b.set_block(e)
    x2 = b.add(fn.arg("a"), 2)
    b.br(merge)
    b.set_block(merge)
    phi = b.phi(I32, "x")
    phi.add_incoming(t, x1)
    phi.add_incoming(e, x2)
    b.ret(phi)
    verify_function(fn)

    ref = Interpreter(m).run("f", [10])
    changes = simplify_cfg(fn)
    assert changes >= 3  # branch fold + dead block + phi simplification
    verify_function(fn)
    assert Interpreter(m).run("f", [10]) == ref == 11
    assert len(fn.blocks) == 3  # 'e' is gone


def test_optimize_pipeline_reaches_fixpoint():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    t = b.add_block("t")
    e = b.add_block("e")
    merge = b.add_block("merge")
    b.set_block(entry)
    five = b.add(2, 3)
    cond = b.icmp("sgt", five, 10)  # constant false
    b.condbr(cond, t, e)
    b.set_block(t)
    x1 = b.mul(fn.arg("a"), 7)
    b.br(merge)
    b.set_block(e)
    x2 = b.mul(fn.arg("a"), 2)
    b.br(merge)
    b.set_block(merge)
    phi = b.phi(I32, "x")
    phi.add_incoming(t, x1)
    phi.add_incoming(e, x2)
    b.ret(phi)
    verify_function(fn)

    ref = Interpreter(m).run("f", [9])
    counts = optimize(fn)
    verify_function(fn)
    assert Interpreter(m).run("f", [9]) == ref == 18
    assert counts["folded"] >= 2
    assert counts["cfg"] >= 3
    # fully straightened: entry -> e -> merge without the dead arm
    assert len(fn.blocks) == 3


def test_optimize_after_inline_semantics():
    """inline + optimize on a call with constant argument fully folds."""
    from repro.transforms import inline_all

    m = Module()
    poly = m.add_function("poly", [("x", I32)], I32)
    b = IRBuilder(poly)
    b.set_block(b.add_block("entry"))
    sq = b.mul(poly.arg("x"), poly.arg("x"))
    b.ret(b.add(sq, 1))

    main = m.add_function("main", [("v", I32)], I32)
    b2 = IRBuilder(main)
    b2.set_block(b2.add_block("entry"))
    r = b2.call(poly, [Constant(I32, 9)])
    b2.ret(b2.add(r, main.arg("v")))
    verify_function(main)

    ref = Interpreter(m).run("main", [100])
    inline_all(main)
    optimize(main)
    verify_function(main)
    assert Interpreter(m).run("main", [100]) == ref == 182
    # 9*9+1 folded away entirely: only the final add remains
    non_term = [i for i in main.instructions() if not i.is_terminator]
    assert len(non_term) == 1 and non_term[0].opcode == "add"


def test_constant_fold_keeps_division_by_zero_dynamic():
    m = Module()
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    q = b.sdiv(5, 0)
    b.ret(q)
    assert constant_fold(fn) == 0  # must not fold into a crash at compile time


def test_fold_fp_unops():
    m = Module()
    fn = m.add_function("f", [], F64)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    s = b.unop("fsqrt", 9.0, F64)
    n = b.unop("fneg", s, F64)
    a = b.unop("fabs", n, F64)
    b.ret(a)
    folded = constant_fold(fn)
    assert folded == 3
    assert Interpreter(m).run("f", []) == 3.0
