import pytest

from repro.interp import Interpreter
from repro.ir import (
    Call,
    Constant,
    I32,
    IRBuilder,
    Module,
    verify_function,
    verify_module,
)
from repro.transforms import InlineError, inline_all, inline_call


def _square_module():
    m = Module()
    sq = m.add_function("square", [("x", I32)], I32)
    b = IRBuilder(sq)
    b.set_block(b.add_block("entry"))
    b.ret(b.mul(sq.arg("x"), sq.arg("x")))

    main = m.add_function("main", [("v", I32)], I32)
    b2 = IRBuilder(main)
    b2.set_block(b2.add_block("entry"))
    r = b2.call(sq, [main.arg("v")])
    out = b2.add(r, 1)
    b2.ret(out)
    verify_module(m)
    return m, main, sq


def test_inline_simple_call():
    m, main, sq = _square_module()
    ref = Interpreter(m).run("main", [6])
    n = inline_all(main)
    assert n == 1
    verify_function(main)
    assert not any(isinstance(i, Call) for i in main.instructions())
    assert Interpreter(m).run("main", [6]) == ref == 37


def test_inline_preserves_semantics_over_inputs():
    for v in (-3, 0, 5, 100):
        m, main, sq = _square_module()
        ref = Interpreter(m).run("main", [v])
        inline_all(main)
        assert Interpreter(m).run("main", [v]) == ref


def _branchy_callee_module():
    """callee with a diamond and two returns."""
    m = Module()
    clamp = m.add_function("clamp", [("x", I32)], I32)
    b = IRBuilder(clamp)
    entry = b.add_block("entry")
    big = b.add_block("big")
    small = b.add_block("small")
    b.set_block(entry)
    c = b.icmp("sgt", clamp.arg("x"), 100)
    b.condbr(c, big, small)
    b.set_block(big)
    b.ret(100)
    b.set_block(small)
    b.ret(clamp.arg("x"))

    main = m.add_function("main", [("v", I32)], I32)
    b2 = IRBuilder(main)
    b2.set_block(b2.add_block("entry"))
    r = b2.call(clamp, [main.arg("v")])
    dbl = b2.mul(r, 2)
    b2.ret(dbl)
    verify_module(m)
    return m, main


def test_inline_multi_return_creates_phi():
    m, main = _branchy_callee_module()
    inline_all(main)
    verify_function(main)
    interp = Interpreter(m)
    assert interp.run("main", [40]) == 80
    assert interp.run("main", [400]) == 200
    # the two returns merged through a phi
    phis = [i for i in main.instructions() if i.opcode == "phi"]
    assert len(phis) >= 1


def test_inline_call_mid_block_splits_correctly():
    m = Module()
    inc = m.add_function("inc", [("x", I32)], I32)
    b = IRBuilder(inc)
    b.set_block(b.add_block("entry"))
    b.ret(b.add(inc.arg("x"), 1))

    main = m.add_function("main", [("v", I32)], I32)
    b2 = IRBuilder(main)
    b2.set_block(b2.add_block("entry"))
    pre = b2.mul(main.arg("v"), 3)
    r = b2.call(inc, [pre])
    post = b2.mul(r, 5)
    b2.ret(post)
    verify_module(m)
    ref = Interpreter(m).run("main", [2])
    inline_all(main)
    verify_function(main)
    assert Interpreter(m).run("main", [2]) == ref == 35


def test_inline_nested_chain():
    m = Module()
    f1 = m.add_function("f1", [("x", I32)], I32)
    b = IRBuilder(f1)
    b.set_block(b.add_block("entry"))
    b.ret(b.add(f1.arg("x"), 10))

    f2 = m.add_function("f2", [("x", I32)], I32)
    b = IRBuilder(f2)
    b.set_block(b.add_block("entry"))
    r = b.call(f1, [f2.arg("x")])
    b.ret(b.mul(r, 2))

    main = m.add_function("main", [("v", I32)], I32)
    b = IRBuilder(main)
    b.set_block(b.add_block("entry"))
    r = b.call(f2, [main.arg("v")])
    b.ret(r)
    verify_module(m)
    ref = Interpreter(m).run("main", [7])
    n = inline_all(main)
    assert n == 2  # f2, then the exposed f1
    verify_function(main)
    assert not any(isinstance(i, Call) for i in main.instructions())
    assert Interpreter(m).run("main", [7]) == ref == 34


def test_inline_into_loop_with_phis():
    """Inline a call whose result feeds a loop-carried phi."""
    m = Module()
    step = m.add_function("step", [("x", I32)], I32)
    b = IRBuilder(step)
    b.set_block(b.add_block("entry"))
    b.ret(b.add(step.arg("x"), 3))

    main = m.add_function("main", [("n", I32)], I32)
    b = IRBuilder(main)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    exit_ = b.add_block("exit")
    b.set_block(entry)
    b.br(header)
    b.set_block(header)
    i = b.phi(I32, "i")
    acc = b.phi(I32, "acc")
    c = b.icmp("slt", i, main.arg("n"))
    b.condbr(c, body, exit_)
    b.set_block(body)
    stepped = b.call(step, [acc])
    i2 = b.add(i, 1)
    b.br(header)
    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(body, i2)
    acc.add_incoming(entry, Constant(I32, 0))
    acc.add_incoming(body, stepped)
    b.set_block(exit_)
    b.ret(acc)
    verify_module(m)

    ref = Interpreter(m).run("main", [5])
    inline_all(main)
    verify_function(main)
    assert Interpreter(m).run("main", [5]) == ref == 15


def test_recursion_is_left_alone():
    m = Module()
    fact = m.add_function("fact", [("n", I32)], I32)
    b = IRBuilder(fact)
    entry = b.add_block("entry")
    base = b.add_block("base")
    rec = b.add_block("rec")
    b.set_block(entry)
    c = b.icmp("sle", fact.arg("n"), 1)
    b.condbr(c, base, rec)
    b.set_block(base)
    b.ret(1)
    b.set_block(rec)
    nm1 = b.sub(fact.arg("n"), 1)
    r = b.call(fact, [nm1])
    b.ret(b.mul(fact.arg("n"), r))
    verify_function(fact)
    assert inline_all(fact) == 0
    with pytest.raises(InlineError):
        call = next(i for i in fact.instructions() if isinstance(i, Call))
        inline_call(fact, call)


def test_inlining_enables_whole_function_path_profiling():
    """The paper's methodology: inline, then profile one flat function."""
    from repro.profiling import BallLarusNumbering

    m, main = _branchy_callee_module()
    inline_all(main)
    bl = BallLarusNumbering(main)
    # the callee's diamond is now visible as two whole-function paths
    assert bl.total_paths == 2
