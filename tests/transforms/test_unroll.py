import pytest

from repro.analysis import LoopInfo
from repro.interp import Interpreter
from repro.ir import verify_function
from repro.transforms.unroll import UnrollError, unroll_hottest_loop, unroll_loop
from tests.conftest import (
    build_array_sum,
    build_counted_loop,
    build_loop_with_branch,
)


@pytest.mark.parametrize("factor", [2, 3, 4])
@pytest.mark.parametrize("n", [0, 1, 2, 5, 9, 16])
def test_unroll_counted_loop_preserves_semantics(factor, n):
    m, fn = build_counted_loop()
    ref = Interpreter(m).run(fn.name, [n])

    m2, fn2 = build_counted_loop()
    loop = LoopInfo.compute(fn2).loops[0]
    unroll_loop(fn2, loop, factor)
    verify_function(fn2)
    assert Interpreter(m2).run(fn2.name, [n]) == ref


@pytest.mark.parametrize("factor", [2, 4])
@pytest.mark.parametrize("n", [0, 3, 7, 13, 40])
def test_unroll_multiblock_body(factor, n):
    """loop_with_branch has a diamond + early exit inside the body."""
    m, fn = build_loop_with_branch()
    ref = Interpreter(m).run(fn.name, [n])

    m2, fn2 = build_loop_with_branch()
    loop = LoopInfo.compute(fn2).loops[0]
    unroll_loop(fn2, loop, factor)
    verify_function(fn2)
    assert Interpreter(m2).run(fn2.name, [n]) == ref


@pytest.mark.parametrize("n", [0, 4, 16])
def test_unroll_memory_loop(n):
    m, fn = build_array_sum()
    ref = Interpreter(m).run(fn.name, [n])
    m2, fn2 = build_array_sum()
    unroll_hottest_loop(fn2, 2)
    verify_function(fn2)
    assert Interpreter(m2).run(fn2.name, [n]) == ref


def test_unroll_grows_block_count():
    m, fn = build_counted_loop()
    before = len(fn.blocks)
    loop = LoopInfo.compute(fn).loops[0]
    unroll_loop(fn, loop, 4)
    assert len(fn.blocks) == before + 3 * len(loop.blocks)


def test_unroll_enlarges_bl_paths():
    """The point of unrolling in the paper: bigger acyclic offload units."""
    from repro.profiling import BallLarusNumbering

    m, fn = build_counted_loop()
    base = BallLarusNumbering(fn)
    base_max = max(
        base.path_instruction_count(p) for p in range(base.total_paths)
    )

    m2, fn2 = build_counted_loop()
    unroll_hottest_loop(fn2, 4)
    unrolled = BallLarusNumbering(fn2)
    unrolled_max = max(
        unrolled.path_instruction_count(p) for p in range(unrolled.total_paths)
    )
    assert unrolled_max > 2.5 * base_max


def test_unroll_factor_validation():
    m, fn = build_counted_loop()
    loop = LoopInfo.compute(fn).loops[0]
    with pytest.raises(UnrollError):
        unroll_loop(fn, loop, 1)


def test_unroll_no_loops_returns_none(diamond):
    _, fn = diamond
    assert unroll_hottest_loop(fn, 2) is None


def test_unroll_then_profile_pipeline():
    """Unrolled kernels still profile and frame end to end."""
    from repro.frames import build_frame
    from repro.profiling import rank_paths
    from repro.regions import path_to_region
    from tests.conftest import profile_function

    m, fn = build_counted_loop()
    unroll_hottest_loop(fn, 2)
    pp, ep = profile_function(m, fn, [[20]])
    ranked = rank_paths(pp)
    frame = build_frame(path_to_region(fn, ranked[0]))
    assert frame.op_count > 0
