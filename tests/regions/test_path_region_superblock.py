from repro.profiling import rank_paths
from repro.regions import (
    build_superblock,
    cancelled_phi_count,
    diagnose_superblock,
    path_guard_count,
    path_region_is_valid,
    path_to_region,
    superblock_is_feasible,
)


def test_path_region_roundtrip(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    ranked = rank_paths(pp)
    region = path_to_region(fn, ranked[0])
    assert region.kind == "bl-path"
    assert region.entry is ranked[0].blocks[0]
    assert region.exit is ranked[0].blocks[-1]
    assert path_region_is_valid(region)
    assert region.coverage == ranked[0].coverage
    assert region.op_count == ranked[0].ops
    assert region.source_paths == [ranked[0].path_id]


def test_path_region_metrics(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    region = path_to_region(fn, rank_paths(pp)[0])
    assert region.memory_op_count == 0
    assert region.op_count > 0
    assert path_guard_count(region) >= 1
    assert cancelled_phi_count(region) == region.phi_count
    # blocks membership
    for b in region.blocks:
        assert b in region


def test_region_guard_and_internal_branches(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    region = path_to_region(fn, rank_paths(pp)[0])
    guards = region.guard_branches()
    internals = region.internal_branches()
    assert set(guards).isdisjoint(internals)
    # a pure path has no internal branches unless both sides rejoin the path
    for blk in internals:
        assert all(s in region for s in blk.successors)


def test_region_exit_edges(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    region = path_to_region(fn, rank_paths(pp)[0])
    for src, dst in region.exit_edges():
        assert src in region and dst not in region


def test_superblock_grows_hot_trace(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    sb = build_superblock(fn, ep)
    assert sb.kind == "superblock"
    assert len(sb.blocks) >= 2
    # consecutive blocks are CFG-linked
    for a, b in zip(sb.blocks, sb.blocks[1:]):
        assert b in a.successors


def test_superblock_is_acyclic(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    sb = build_superblock(fn, ep)
    assert len(set(sb.blocks)) == len(sb.blocks)


def test_superblock_feasible_on_biased_code(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    sb = build_superblock(fn, ep)
    assert superblock_is_feasible(sb, pp)


def test_superblock_infeasible_on_anticorrelated(profiled_anticorrelated):
    """Paper Fig. 3: edge profiles construct a never-executed superblock."""
    m, fn, pp, ep = profiled_anticorrelated
    sb = build_superblock(fn, ep)
    names = [b.name for b in sb.blocks]
    # the superblock mixes sides of the two anti-correlated branches
    assert not superblock_is_feasible(sb, pp)


def test_diagnose_superblock(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    diag = diagnose_superblock(fn, ep, pp, ranked)
    assert diag.function == "anticorr"
    assert not diag.feasible
    assert not diag.matches_hottest_path
    assert diag.superblock_blocks and diag.hottest_path_blocks


def test_diagnose_superblock_feasible(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    ranked = rank_paths(pp)
    diag = diagnose_superblock(fn, ep, pp, ranked)
    assert diag.feasible


def test_superblock_max_blocks(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    sb = build_superblock(fn, ep, max_blocks=2)
    assert len(sb.blocks) <= 2


def test_superblock_explicit_seed(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    seed = fn.get_block("then")
    sb = build_superblock(fn, ep, seed=seed)
    assert sb.blocks[0] is seed
