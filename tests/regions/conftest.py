"""Back-compat shim: fixtures moved to the top-level tests/conftest.py."""

from tests.conftest import (
    build_anticorrelated as build_anticorrelated,
    profile_function as profile_function,
)
