"""Structural invariants of regions/braids asserted over the full suite."""

import pytest

from repro.analysis import DominatorTree
from repro.analysis.loops import back_edges
from repro.profiling import rank_paths
from repro.regions import (
    Region,
    build_braids,
    order_blocks_topologically,
    path_to_region,
)
from repro.workloads import all_names, get, profile_workload


@pytest.mark.parametrize("name", all_names())
def test_braid_invariants_across_suite(name):
    profiled = profile_workload(get(name))
    ranked = rank_paths(profiled.paths)
    braids = build_braids(profiled.function, ranked)
    total_cov = 0.0
    for braid in braids:
        region = braid.region
        # single entry / single exit identity
        assert region.entry is braid.paths[0].entry_block
        assert region.exit is braid.paths[0].exit_block
        for p in braid.paths:
            assert p.entry_block is region.entry
            assert p.exit_block is region.exit
        # coverage additivity
        assert abs(region.coverage - sum(p.coverage for p in braid.paths)) < 1e-9
        total_cov += region.coverage
        # acyclic: no back edge connects two braid blocks
        backs = back_edges(profiled.function)
        for u, v in backs:
            assert not (u in region and v in region and v is not region.entry) or (
                u is region.blocks[-1]
            )
    # braids partition the executed paths: coverages sum to <= 1
    assert total_cov <= 1.0 + 1e-9


@pytest.mark.parametrize("name", ["470.lbm", "186.crafty", "swaptions"])
def test_path_regions_are_cfg_walks(name):
    profiled = profile_workload(get(name))
    for p in rank_paths(profiled.paths, limit=10):
        region = path_to_region(profiled.function, p)
        for a, b in zip(region.blocks, region.blocks[1:]):
            assert b in a.successors


def test_order_blocks_topologically_respects_dominance(loop_with_branch):
    _, fn = loop_with_branch
    blocks = list(reversed(fn.blocks))  # scrambled
    ordered = order_blocks_topologically(fn, blocks)
    dom = DominatorTree.compute(fn)
    index = {b: i for i, b in enumerate(ordered)}
    for a in ordered:
        for b in ordered:
            if a is not b and dom.strictly_dominates(a, b):
                assert index[a] < index[b]


def test_region_membership_and_metrics(diamond):
    _, fn = diamond
    region = Region(
        kind="bl-path",
        function=fn,
        blocks=[fn.get_block("entry"), fn.get_block("then"), fn.get_block("merge")],
        entry=fn.get_block("entry"),
        exit=fn.get_block("merge"),
    )
    assert fn.get_block("then") in region
    assert fn.get_block("else") not in region
    assert region.op_count > 0
    assert region.phi_count == 1
    assert region.float_op_count == 0
    ins, outs = region.live_values()
    assert ins  # the args flow in
