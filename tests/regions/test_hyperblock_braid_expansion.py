from repro.profiling import rank_paths
from repro.regions import (
    braid_memory_branch_dependences,
    braid_table_row,
    build_braids,
    build_hyperblock,
    build_loop_hyperblock,
    expand_path,
    hottest_innermost_loop,
    hyperblock_cold_stats,
    summarise_expansion,
)


# -- hyperblocks ---------------------------------------------------------------


def test_hyperblock_folds_unbiased_branches(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    loop = hottest_innermost_loop(fn, ep)
    hb = build_loop_hyperblock(fn, loop, ep)
    names = {b.name for b in hb.blocks}
    # both sides of both 50/50 diamonds get folded in
    assert {"B1", "B2", "D1", "D2"} <= names


def test_hyperblock_follows_hot_side_when_biased(profiled_loop_with_branch):
    m, fn, pp, ep = profiled_loop_with_branch
    loop = hottest_innermost_loop(fn, ep)
    hb = build_loop_hyperblock(fn, loop, ep, bias_threshold=0.55)
    # srem(i,3)==0 is ~33% biased toward 'merge' (not-taken), so with a low
    # threshold only the hot side is followed
    names = {b.name for b in hb.blocks}
    assert "merge" in names


def test_hyperblock_respects_allowed_set(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    loop = hottest_innermost_loop(fn, ep)
    hb = build_loop_hyperblock(fn, loop, ep)
    assert all(b in loop.blocks for b in hb.blocks)


def test_hyperblock_cold_stats(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    loop = hottest_innermost_loop(fn, ep)
    hb = build_loop_hyperblock(fn, loop, ep)
    stats = hyperblock_cold_stats(hb, ep)
    assert stats.total_ops > 0
    # B1/B2/D1/D2 run at 50% of the header -> cold at the 0.5 threshold? No:
    # cold means strictly below threshold*entry, and 0.5*entry == their count,
    # so they are not cold; but with a higher cutoff they are.
    strict = hyperblock_cold_stats(hb, ep, cold_threshold=0.75)
    assert strict.cold_ops > 0
    assert 0.0 < strict.cold_fraction < 1.0
    assert stats.predication_branches >= 2


def test_hyperblock_without_loops(diamond):
    from tests.regions.conftest import profile_function

    m, fn = diamond
    pp, ep = profile_function(m, fn, [[1, 5], [9, 1]])
    hb = build_hyperblock(fn, ep, bias_threshold=0.9)
    names = {b.name for b in hb.blocks}
    assert {"entry", "then", "else", "merge"} == names
    assert hottest_innermost_loop(fn, ep) is None


# -- braids -----------------------------------------------------------------------


def test_braids_group_by_entry_exit(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    braids = build_braids(fn, ranked)
    # the two loop-body paths (A..E) share entry/exit and merge into one braid
    top = braids[0]
    assert top.n_paths >= 2
    names = {b.name for b in top.region.blocks}
    assert {"B1", "B2", "D1", "D2"} <= names


def test_braid_coverage_is_sum_of_paths(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    braids = build_braids(fn, ranked)
    for braid in braids:
        assert abs(
            braid.coverage - sum(p.coverage for p in braid.paths)
        ) < 1e-12
        assert braid.region.frequency == sum(p.freq for p in braid.paths)


def test_braid_live_values_match_constituent_paths(profiled_anticorrelated):
    """§IV-B: merging same-entry/exit paths leaves live-ins/outs unchanged."""
    from repro.regions import path_to_region

    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    braids = build_braids(fn, ranked)
    top = braids[0]
    braid_ins, braid_outs = top.region.live_values()
    # live-outs of the braid equal the union over constituent paths
    path_outs = set()
    for p in top.paths:
        _, outs = path_to_region(fn, p).live_values()
        path_outs |= set(outs)
    assert set(braid_outs) <= path_outs | set(braid_outs)
    assert len(braid_outs) <= len(path_outs) + 1


def test_braid_guards_vs_ifs(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    top = build_braids(fn, ranked)[0]
    guards = top.region.guard_branches()
    ifs = top.region.internal_branches()
    # merging internalises the two diamond branches
    if_names = {b.name for b in ifs}
    assert {"P", "C"} <= if_names
    assert set(guards).isdisjoint(ifs)


def test_braid_fewer_guards_than_paths(profiled_anticorrelated):
    from repro.regions import path_guard_count, path_to_region

    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    top = build_braids(fn, ranked)[0]
    braid_guards = len(top.region.guard_branches())
    path_guards = path_guard_count(path_to_region(fn, top.paths[0]))
    assert braid_guards <= path_guards


def test_braid_max_paths_cap(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    braids = build_braids(fn, ranked, max_paths_per_braid=1)
    assert all(b.n_paths == 1 for b in braids)


def test_braid_table_row(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    braids = build_braids(fn, ranked)
    row = braid_table_row(fn, braids)
    assert row.n_braids == len(braids)
    assert row.avg_paths_per_braid >= 1.0
    assert row.top_ops == braids[0].region.op_count
    assert row.top_guards >= 0 and row.top_ifs >= 2


def test_braid_table_row_empty(diamond):
    _, fn = diamond
    row = braid_table_row(fn, [])
    assert row.n_braids == 0 and row.top_coverage == 0.0


def test_braid_memory_dependences(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    top = build_braids(fn, rank_paths(pp))[0]
    # no memory ops in this kernel at all
    assert braid_memory_branch_dependences(top) == 0


def test_braids_sorted_by_weight(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    braids = build_braids(fn, rank_paths(pp))
    weights = [b.weight for b in braids]
    assert weights == sorted(weights, reverse=True)


# -- expansion -----------------------------------------------------------------------


def test_expand_path_repeating(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    expanded = expand_path(pp, ranked[0])
    # even/odd iterations alternate, so the best successor is the *other* path
    assert expanded.successor_id is not None
    assert not expanded.repeats_same_path
    assert expanded.bias > 0.9
    assert expanded.growth_factor > 1.5


def test_expand_path_same_repeats(counted_loop):
    from tests.regions.conftest import profile_function

    m, fn = counted_loop
    pp, ep = profile_function(m, fn, [[50]])
    ranked = rank_paths(pp)
    expanded = expand_path(pp, ranked[0])
    assert expanded.repeats_same_path
    assert expanded.growth_factor >= 1.9  # same path doubles the unit
    assert expanded.bias_bucket in ("90-100%",)


def test_expand_path_min_bias_gate(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    ranked = rank_paths(pp)
    expanded = expand_path(pp, ranked[0], min_bias=1.01)
    assert expanded.successor_blocks == []
    assert expanded.growth_factor == 1.0


def test_summarise_expansion(profiled_anticorrelated):
    m, fn, pp, ep = profiled_anticorrelated
    summary = summarise_expansion(pp, rank_paths(pp))
    assert summary is not None
    assert summary.bias_bucket == "90-100%"
    assert summary.growth_factor > 1.0
    assert summarise_expansion(pp, []) is None
