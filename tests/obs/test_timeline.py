"""Chrome trace-event export: structure, determinism, and agreement
between the simulated timeline and the attribution ledger."""

import json

import pytest

from repro import obs
from repro.obs.spans import SpanNode
from repro.obs.timeline import (
    SIM_PID,
    WALL_PID,
    TimelineEvent,
    chrome_trace,
    render_chrome,
)
from repro.pipeline import NeedlePipeline
from repro.workloads import get
from repro.workloads.base import clear_profile_cache


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()
    yield
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()


def _duration_events(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def _assert_structurally_valid(doc):
    """The invariants Perfetto relies on: complete events carry
    ts/dur/pid/tid, and per-track timestamps never go backwards."""
    assert "traceEvents" in doc
    last_ts = {}
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "M"), ev
        assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
        if ev["ph"] != "X":
            continue
        for key in ("name", "ts", "dur", "pid", "tid"):
            assert key in ev, (key, ev)
        assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
        track = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last_ts.get(track, 0.0), ev
        last_ts[track] = ev["ts"]


# -- synthetic input ---------------------------------------------------------


def test_span_forest_becomes_wall_clock_process():
    roots = [SpanNode(name="outer", start=10.0, duration=2.0,
                      children=[SpanNode(name="inner", start=10.5,
                                         duration=1.0)])]
    doc = chrome_trace(span_roots=roots)
    _assert_structurally_valid(doc)
    xs = _duration_events(doc)
    assert [e["name"] for e in xs] == ["outer", "inner"]
    assert all(e["pid"] == WALL_PID for e in xs)
    # rebased to the forest's earliest start, scaled to µs
    assert xs[0]["ts"] == 0.0 and xs[0]["dur"] == 2e6
    assert xs[1]["ts"] == 0.5e6


def test_sim_tracks_get_sorted_tids_and_thread_names():
    tracks = {
        "w/braid": [TimelineEvent("frame", 0.0, 5.0)],
        "w/bl-path-oracle": [TimelineEvent("reconfig", 0.0, 16.0),
                             TimelineEvent("frame", 16.0, 4.0)],
    }
    doc = chrome_trace(sim_tracks=tracks)
    _assert_structurally_valid(doc)
    metas = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    # sorted-name order: bl-path-oracle before braid
    assert metas[1] == "w/bl-path-oracle"
    assert metas[2] == "w/braid"
    assert all(e["pid"] == SIM_PID for e in _duration_events(doc))


def test_render_chrome_is_deterministic():
    tracks = {"t": [TimelineEvent("frame", 0.0, 1.0, {"pid": 3})]}
    assert render_chrome(None, tracks) == render_chrome(None, tracks)
    json.loads(render_chrome(None, tracks))  # parses


# -- a real workload ---------------------------------------------------------


def test_real_workload_chrome_trace_is_valid_and_conserves():
    obs.enable(reset=True)
    pipeline = NeedlePipeline()
    w = get("dwt53")
    ev = pipeline.evaluate(w)
    tracks = pipeline.timeline(w)
    doc = chrome_trace(obs.registry().span_roots, tracks)
    _assert_structurally_valid(doc)

    # both clocks are present as separate processes
    pids = {e["pid"] for e in _duration_events(doc)}
    assert pids == {WALL_PID, SIM_PID}

    # each strategy track replays exactly the reported simulated time
    by_strategy = {
        "bl-path-oracle": ev.path_oracle,
        "bl-path-history": ev.path_history,
        "braid": ev.braid,
    }
    for strategy, outcome in by_strategy.items():
        events = tracks[strategy]
        assert events, strategy
        assert events[-1].end_cycle == outcome.needle_cycles
        # contiguous, gap-free replay
        clock = 0.0
        for event in events:
            assert event.start_cycle == clock
            clock = event.end_cycle
