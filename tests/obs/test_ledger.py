"""The attribution ledger: conservation and cross-mode determinism.

Two contracts under test (docs/observability.md):

* **conservation by construction** — for every evaluated strategy the
  ledger's folded cycle/energy totals equal the simulator's reported
  ``needle_cycles``/``needle_energy_pj`` *exactly* (``==``, no
  tolerance), and the ``host`` baseline rows equal ``baseline_cycles``;
* **determinism** — the full-suite ledger (inside the semantic-JSON
  export) is byte-identical whether the suite ran serially, across a
  process pool, or served from the artifact cache.
"""

import json

import pytest

from repro import obs
from repro.obs import export
from repro.obs.ledger import (
    CHARGE_CLASSES,
    HOST_STRATEGY,
    AttributionLedger,
    fold_attribution,
)
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.workloads import all_names, get
from repro.workloads.base import clear_profile_cache


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()
    yield
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()


# -- unit behaviour ----------------------------------------------------------


def test_charge_accumulates_and_snapshot_sorts():
    led = AttributionLedger()
    led.charge("w", "s", "r", "frame.compute", 2.0, 10.0)
    led.charge("w", "s", "r", "frame.compute", 3.0, 5.0)
    led.charge("a", "s", "r", "transfer", 1.0, 1.0)
    snap = led.snapshot()
    assert [e["workload"] for e in snap["entries"]] == ["a", "w"]
    assert snap["entries"][1]["cycles"] == 5.0
    assert snap["entries"][1]["energy_pj"] == 15.0


def test_merge_snapshot_adds_like_counters():
    a = AttributionLedger()
    b = AttributionLedger()
    a.charge("w", "s", "r", "transfer", 1.0, 2.0)
    b.charge("w", "s", "r", "transfer", 10.0, 20.0)
    b.charge("w", "s", "r", "reconfig", 5.0, 0.0)
    a.merge_snapshot(b.snapshot())
    assert a.cycle_total("w", "s") == 16.0
    assert a.energy_total("w", "s") == 22.0


def test_fold_attribution_matches_ledger_fold_order():
    # the fold and cycle_total must walk classes in the same (sorted)
    # order — that ordering is the whole conservation argument
    attr = {"transfer": (0.1, 1.0), "frame.compute": (0.2, 2.0),
            "reconfig": (0.3, 0.0)}
    led = AttributionLedger()
    led.add_attribution("w", "s", "r", attr)
    cycles, energy = fold_attribution(attr)
    assert led.cycle_total("w", "s") == cycles
    assert led.energy_total("w", "s") == energy


# -- conservation against the simulator --------------------------------------


def _strategy_outcomes(ev):
    return [o for o in (ev.path_oracle, ev.path_history, ev.braid)
            if o is not None]


def test_ledger_conserves_simulator_totals_exactly():
    obs.enable(reset=True)
    pipeline = NeedlePipeline()
    for name in ("dwt53", "164.gzip", "fft-2d", "blackscholes"):
        ev = pipeline.evaluate(get(name))
        led = obs.ledger()
        outcomes = _strategy_outcomes(ev)
        assert outcomes, name
        for outcome in outcomes:
            assert led.cycle_total(name, outcome.strategy) == \
                outcome.needle_cycles
            assert led.energy_total(name, outcome.strategy) == \
                outcome.needle_energy_pj
        # the host baseline is published once, under strategy "host"
        assert led.cycle_total(name, HOST_STRATEGY) == \
            outcomes[0].baseline_cycles
        assert led.energy_total(name, HOST_STRATEGY) == \
            outcomes[0].baseline_energy_pj


def test_ledger_charge_classes_stay_within_the_contract():
    obs.enable(reset=True)
    NeedlePipeline().evaluate(get("dwt53"))
    for (workload, _s, region, charge), _v in obs.ledger().series():
        assert charge in CHARGE_CLASSES
        assert workload == "dwt53"
        assert region in ("bl-path", "braid", HOST_STRATEGY)


def test_outcome_attribution_folds_to_reported_totals():
    # the per-outcome dict itself (before any ledger) is the contract
    ev = NeedlePipeline().evaluate(get("dwt53"))
    for outcome in _strategy_outcomes(ev):
        assert set(outcome.attribution) <= set(CHARGE_CLASSES)
        assert fold_attribution(outcome.attribution) == (
            outcome.needle_cycles, outcome.needle_energy_pj)
        assert fold_attribution(outcome.baseline_attribution) == (
            outcome.baseline_cycles, outcome.baseline_energy_pj)


# -- cross-mode determinism over the full suite -------------------------------


def _suite_ledger_json(jobs=None, cache=None) -> str:
    clear_profile_cache()
    obs.enable(reset=True)
    pipeline = NeedlePipeline(cache=cache, options=PipelineOptions(jobs=jobs))
    pipeline.evaluate_all([get(n) for n in all_names()])
    data = json.loads(export.semantic_json(None))
    obs.disable()
    return json.dumps(data["ledger"], sort_keys=True)


def test_full_suite_ledger_identical_serial_parallel_and_cached(tmp_path):
    cache_dir = str(tmp_path / "cache")
    serial = _suite_ledger_json()
    parallel = _suite_ledger_json(jobs=4)
    cold = _suite_ledger_json(cache=cache_dir)
    warm = _suite_ledger_json(cache=cache_dir)  # served from the cache
    assert serial == parallel
    assert serial == cold
    assert serial == warm
    entries = json.loads(serial)["entries"]
    assert {e["workload"] for e in entries} == set(all_names())
