"""Exporter output: deterministic JSON, Prometheus text, human views."""

import json

from repro.obs import export
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("interp.instructions_retired",
                    help="dynamic instructions", semantic=True)
    c.inc(1200, workload="dwt53")
    c.inc(800, workload="470.lbm")
    reg.gauge("pipeline.evaluate_seconds",
              help="wall time").set(0.25, workload="dwt53")
    reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    return reg


GOLDEN_PROM = """\
# HELP interp_instructions_retired dynamic instructions
# TYPE interp_instructions_retired counter
interp_instructions_retired{workload="470.lbm"} 800
interp_instructions_retired{workload="dwt53"} 1200
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 1
lat_bucket{le="+Inf"} 1
lat_sum 0.05
lat_count 1
# HELP pipeline_evaluate_seconds wall time
# TYPE pipeline_evaluate_seconds gauge
pipeline_evaluate_seconds{workload="dwt53"} 0.25
"""


def test_prometheus_golden_output():
    assert export.to_prometheus(_sample_registry()) == GOLDEN_PROM


def test_json_is_deterministic_and_parseable():
    a = export.to_json(_sample_registry())
    b = export.to_json(_sample_registry())
    assert a == b
    data = json.loads(a)
    names = [m["name"] for m in data["metrics"]]
    assert names == sorted(names)


def test_semantic_json_filters_operational_metrics():
    data = json.loads(export.semantic_json(_sample_registry()))
    assert [m["name"] for m in data["metrics"]] == [
        "interp.instructions_retired"
    ]


def test_exporters_accept_registry_snapshot_and_none():
    reg = _sample_registry()
    assert export.to_json(reg) == export.to_json(reg.snapshot())

    from repro import obs

    old = obs.set_registry(reg)
    try:
        assert export.to_json(None) == export.to_json(reg)
    finally:
        obs.set_registry(old)


def test_render_metrics_marks_semantic_and_aligns():
    text = export.render_metrics(_sample_registry())
    assert "*interp.instructions_retired" in text
    assert " pipeline.evaluate_seconds" in text
    assert "count=1 sum=0.05" in text
    assert "* = semantic" in text


def test_render_metrics_empty_registry_hint():
    text = export.render_metrics(MetricsRegistry())
    assert "no metrics recorded" in text


def test_prometheus_and_json_handle_empty_registry():
    empty = MetricsRegistry()
    assert export.to_prometheus(empty) == ""
    data = json.loads(export.to_json(empty))
    assert data["metrics"] == []
    assert json.loads(export.semantic_json(empty))["metrics"] == []


def test_prometheus_label_value_escaping():
    reg = MetricsRegistry()
    c = reg.counter("paths", semantic=True)
    # the three characters the exposition format requires escaping
    c.inc(1, workload='back\\slash and "quote"\nnewline')
    text = export.to_prometheus(reg)
    (sample,) = [l for l in text.splitlines() if l.startswith("paths{")]
    assert r"back\\slash" in sample
    assert r"\"quote\"" in sample
    assert r"\nnewline" in sample
    # the raw control characters must not survive into the sample line
    assert "\n" not in sample
    # every quote inside the value is escaped: only the two label-value
    # delimiters remain unescaped
    assert sample.count('"') == sample.count('\\"') + 2


def test_prometheus_escaping_roundtrip_values():
    # each escape individually, to pin the exact substitutions
    cases = {
        "a\\b": r"a\\b",
        'a"b': r"a\"b",
        "a\nb": r"a\nb",
    }
    reg = MetricsRegistry()
    c = reg.counter("m")
    for i, raw in enumerate(sorted(cases)):
        c.inc(1, v=raw, i=str(i))
    text = export.to_prometheus(reg)
    for raw in sorted(cases):
        assert 'v="%s"' % cases[raw] in text


def test_render_trace_indents_children():
    reg = MetricsRegistry()
    with_span = reg.open_span("outer", {"workload": "x"})
    inner = reg.open_span("inner", {})
    reg.close_span(inner)
    reg.close_span(with_span)
    text = export.render_trace(reg)
    lines = text.splitlines()
    assert lines[0].startswith("outer (workload=x)")
    assert lines[1].startswith("  inner")
    assert "ms" in lines[0]


def test_prometheus_output_is_order_independent():
    """Registration order must never leak into the exposition text.

    Two registries record the same facts with families and label sets
    interleaved in opposite orders; a scrape of either must be
    byte-identical — sorted families, sorted series within a family.
    """

    def _forward():
        reg = MetricsRegistry()
        a = reg.counter("zz.last", help="last family")
        b = reg.counter("aa.first", help="first family")
        a.inc(1, workload="dwt53", strategy="braid")
        a.inc(2, workload="164.gzip", strategy="path")
        b.inc(3, pool="thread")
        b.inc(4, pool="process")
        reg.gauge("mm.middle").set(0.5, shard="9")
        reg.gauge("mm.middle").set(0.25, shard="10")
        return reg

    def _reversed():
        reg = MetricsRegistry()
        reg.gauge("mm.middle").set(0.25, shard="10")
        reg.gauge("mm.middle").set(0.5, shard="9")
        b = reg.counter("aa.first", help="first family")
        b.inc(4, pool="process")
        b.inc(3, pool="thread")
        a = reg.counter("zz.last", help="last family")
        a.inc(2, workload="164.gzip", strategy="path")
        a.inc(1, workload="dwt53", strategy="braid")
        return reg

    forward = export.to_prometheus(_forward())
    assert forward == export.to_prometheus(_reversed())
    lines = forward.splitlines()
    families = [l.split(" ")[2] for l in lines if l.startswith("# TYPE")]
    assert families == sorted(families)
    series = [l for l in lines if l.startswith("aa_first{")]
    assert series == sorted(series)


def test_prometheus_ordering_survives_snapshot_round_trip():
    """Raw worker snapshots arrive in whatever order the worker
    registered things; the exporter, not the snapshot, owns ordering."""
    reg = MetricsRegistry()
    c = reg.counter("fold.series", help="h")
    c.inc(1, w="b")
    c.inc(1, w="a")
    snap = reg.snapshot()
    # scramble the snapshot's own ordering to model a hostile source
    snap["metrics"][0]["series"].reverse()
    text = export.to_prometheus(snap)
    idx_a = text.index('w="a"')
    idx_b = text.index('w="b"')
    assert idx_a < idx_b


def test_render_prometheus_alias():
    assert export.render_prometheus is export.to_prometheus
