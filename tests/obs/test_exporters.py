"""Exporter output: deterministic JSON, Prometheus text, human views."""

import json

from repro.obs import export
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("interp.instructions_retired",
                    help="dynamic instructions", semantic=True)
    c.inc(1200, workload="dwt53")
    c.inc(800, workload="470.lbm")
    reg.gauge("pipeline.evaluate_seconds",
              help="wall time").set(0.25, workload="dwt53")
    reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05)
    return reg


GOLDEN_PROM = """\
# HELP interp_instructions_retired dynamic instructions
# TYPE interp_instructions_retired counter
interp_instructions_retired{workload="470.lbm"} 800
interp_instructions_retired{workload="dwt53"} 1200
# TYPE lat histogram
lat_bucket{le="0.1"} 1
lat_bucket{le="1"} 1
lat_bucket{le="+Inf"} 1
lat_sum 0.05
lat_count 1
# HELP pipeline_evaluate_seconds wall time
# TYPE pipeline_evaluate_seconds gauge
pipeline_evaluate_seconds{workload="dwt53"} 0.25
"""


def test_prometheus_golden_output():
    assert export.to_prometheus(_sample_registry()) == GOLDEN_PROM


def test_json_is_deterministic_and_parseable():
    a = export.to_json(_sample_registry())
    b = export.to_json(_sample_registry())
    assert a == b
    data = json.loads(a)
    names = [m["name"] for m in data["metrics"]]
    assert names == sorted(names)


def test_semantic_json_filters_operational_metrics():
    data = json.loads(export.semantic_json(_sample_registry()))
    assert [m["name"] for m in data["metrics"]] == [
        "interp.instructions_retired"
    ]


def test_exporters_accept_registry_snapshot_and_none():
    reg = _sample_registry()
    assert export.to_json(reg) == export.to_json(reg.snapshot())

    from repro import obs

    old = obs.set_registry(reg)
    try:
        assert export.to_json(None) == export.to_json(reg)
    finally:
        obs.set_registry(old)


def test_render_metrics_marks_semantic_and_aligns():
    text = export.render_metrics(_sample_registry())
    assert "*interp.instructions_retired" in text
    assert " pipeline.evaluate_seconds" in text
    assert "count=1 sum=0.05" in text
    assert "* = semantic" in text


def test_render_metrics_empty_registry_hint():
    text = export.render_metrics(MetricsRegistry())
    assert "no metrics recorded" in text


def test_render_trace_indents_children():
    reg = MetricsRegistry()
    with_span = reg.open_span("outer", {"workload": "x"})
    inner = reg.open_span("inner", {})
    reg.close_span(inner)
    reg.close_span(with_span)
    text = export.render_trace(reg)
    lines = text.splitlines()
    assert lines[0].startswith("outer (workload=x)")
    assert lines[1].startswith("  inner")
    assert "ms" in lines[0]
