"""Registry semantics: labels, kinds, snapshots, merges."""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricTypeError,
    MetricsRegistry,
    label_key,
)


def test_label_key_is_order_insensitive_and_stringifies():
    assert label_key({"b": 2, "a": "x"}) == label_key({"a": "x", "b": "2"})


def test_counter_accumulates_per_labelset():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    c.inc(workload="a")
    c.inc(2, workload="a")
    c.inc(workload="b")
    assert c.value(workload="a") == 3
    assert c.value(workload="b") == 1
    assert c.value(workload="missing") == 0


def test_series_order_is_deterministic():
    reg = MetricsRegistry()
    c = reg.counter("hits")
    c.inc(workload="z")
    c.inc(workload="a")
    assert [dict(k)["workload"] for k, _v in c.series()] == ["a", "z"]


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    g = reg.gauge("depth")
    g.set(3, run="x")
    g.set(7, run="x")
    assert g.value(run="x") == 7


def test_histogram_buckets_and_sum():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 10.0))
    for v in (0.5, 5.0, 50.0):
        h.observe(v)
    stats = h.stats()
    assert stats["count"] == 3
    assert stats["sum"] == pytest.approx(55.5)
    assert stats["buckets"] == [1, 1, 1]  # <=1, <=10, overflow


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(MetricTypeError):
        reg.gauge("x")


def test_get_or_create_returns_same_instance():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")


def test_snapshot_merge_adds_counters_and_histograms():
    a = MetricsRegistry()
    a.counter("n").inc(2, k="v")
    a.histogram("h", buckets=(1.0,)).observe(0.5)

    b = MetricsRegistry()
    b.counter("n").inc(3, k="v")
    b.counter("n").inc(1, k="w")
    b.histogram("h", buckets=(1.0,)).observe(2.0)
    b.gauge("g").set(9)

    a.merge_snapshot(b.snapshot())
    assert a.counter("n").value(k="v") == 5
    assert a.counter("n").value(k="w") == 1
    stats = a.histogram("h", buckets=(1.0,)).stats()
    assert stats["count"] == 2 and stats["buckets"] == [1, 1]
    assert a.gauge("g").value() == 9


def test_merge_kind_conflict_raises():
    a = MetricsRegistry()
    a.counter("x").inc()
    b = MetricsRegistry()
    b.gauge("x").set(1)
    with pytest.raises(MetricTypeError):
        a.merge_snapshot(b.snapshot())


def test_snapshot_roundtrip_is_plain_data():
    import json

    reg = MetricsRegistry()
    reg.counter("n", semantic=True).inc(4, k="v")
    reg.histogram("h").observe(0.01)
    snap = reg.snapshot()
    assert json.loads(json.dumps(snap)) == snap

    other = MetricsRegistry()
    other.merge_snapshot(snap)
    assert other.snapshot()["metrics"] == snap["metrics"]


def test_semantic_series_filters_operational_metrics():
    reg = MetricsRegistry()
    reg.counter("real", semantic=True).inc(7)
    reg.counter("noise").inc(1)
    names = {name for name, _labels, _v in reg.semantic_series()}
    assert names == {"real"}


def test_metric_kinds():
    assert Counter.kind == "counter"
    assert Gauge.kind == "gauge"
    assert Histogram.kind == "histogram"
