"""Centralised logging configuration (`repro.obs.logging_setup`)."""

import io
import logging

import pytest

from repro import obs
from repro.obs import logconfig


@pytest.fixture(autouse=True)
def _clean_repro_logger():
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:], logger.level, logger.propagate = \
        saved[0], saved[1], saved[2]


def test_setup_is_exported_from_obs():
    assert obs.logging_setup is logconfig.logging_setup


def test_default_level_is_warning(monkeypatch):
    monkeypatch.delenv(logconfig.LOG_LEVEL_ENV, raising=False)
    assert logconfig.logging_setup() == logging.WARNING


def test_explicit_level_and_numeric_forms():
    assert logconfig.logging_setup("debug") == logging.DEBUG
    assert logconfig.logging_setup("INFO") == logging.INFO
    assert logconfig.logging_setup("15") == 15


def test_env_var_is_the_fallback(monkeypatch):
    monkeypatch.setenv(logconfig.LOG_LEVEL_ENV, "ERROR")
    assert logconfig.logging_setup() == logging.ERROR
    # an explicit argument beats the environment
    assert logconfig.logging_setup("INFO") == logging.INFO


def test_unknown_level_raises_value_error():
    with pytest.raises(ValueError, match="unknown log level"):
        logconfig.logging_setup("LOUD")


def test_idempotent_single_handler():
    logger = logging.getLogger("repro")
    before = len(logger.handlers)
    logconfig.logging_setup("INFO")
    logconfig.logging_setup("DEBUG")
    logconfig.logging_setup("WARNING")
    named = [h for h in logger.handlers
             if getattr(h, "name", "") == logconfig._HANDLER_NAME]
    assert len(named) == 1
    assert len(logger.handlers) <= before + 1


def test_repro_loggers_route_through_the_handler():
    stream = io.StringIO()
    logconfig.logging_setup("INFO", stream=stream)
    logging.getLogger("repro.obs.test_logconfig").info("wired %d", 7)
    text = stream.getvalue()
    assert "wired 7" in text
    assert "repro.obs.test_logconfig" in text
