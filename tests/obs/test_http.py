"""The opt-in metrics endpoint: address parsing and HTTP surface."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.http import DEFAULT_HOST, MetricsServer, parse_serve_address
from repro.obs.live import ProgressModel


# -- address parsing ----------------------------------------------------------


def test_parse_serve_address_forms():
    assert parse_serve_address("9100") == (DEFAULT_HOST, 9100)
    assert parse_serve_address("0.0.0.0:9100") == ("0.0.0.0", 9100)
    assert parse_serve_address("localhost:0") == ("localhost", 0)


@pytest.mark.parametrize("bad", ["", "nine", "host:", ":9100x", "1:2:x", "70000"])
def test_parse_serve_address_rejects_garbage(bad):
    with pytest.raises(ValueError, match="serve-metrics"):
        parse_serve_address(bad)


# -- live server --------------------------------------------------------------


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.headers, response.read()


@pytest.fixture
def server():
    model = ProgressModel()
    srv = MetricsServer(port=0, progress=model).start()
    try:
        yield srv, model
    finally:
        srv.close()


def test_healthz(server):
    srv, _model = server
    status, _headers, body = _get(srv.url + "/healthz")
    assert status == 200
    assert body == b"ok\n"


def test_progress_endpoint_serves_model_snapshot(server):
    srv, model = server
    import repro.obs.events as ev

    bus = ev.EventBus(run_id="http")
    bus.subscribe(model.apply)
    bus.publish(ev.RUN_STARTED, "http", run_id="http", total=2, todo=2)
    bus.publish(ev.TASK_STARTED, "a", attempt=1)
    for path in ("/progress", "/progress.json"):
        status, headers, body = _get(srv.url + path)
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snap = json.loads(body)
        assert snap["run_id"] == "http"
        assert [r["task"] for r in snap["running"]] == ["a"]


def test_metrics_endpoint_serves_prometheus_text(server):
    srv, _model = server
    obs.enable(reset=True)
    try:
        obs.counter("obs.http_test_events", 3, help="test counter")
        status, headers, body = _get(srv.url + "/metrics")
    finally:
        obs.disable()
        obs.registry().clear()
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    text = body.decode("utf-8")
    assert "obs_http_test_events 3" in text
    # well-formed exposition: every non-comment line is "name[{labels}] value"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, _, value = line.rpartition(" ")
        assert name_part
        float(value)  # parses as a number


def test_unknown_path_is_404(server):
    srv, _model = server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(srv.url + "/nope")
    assert excinfo.value.code == 404


def test_server_binds_loopback_by_default():
    model = ProgressModel()
    srv = MetricsServer(port=0, progress=model).start()
    try:
        assert srv.host == "127.0.0.1"
        assert srv.port > 0
        assert srv.url == "http://127.0.0.1:%d" % srv.port
    finally:
        srv.close()


def test_two_servers_on_ephemeral_ports_coexist():
    a = MetricsServer(port=0, progress=ProgressModel()).start()
    b = MetricsServer(port=0, progress=ProgressModel()).start()
    try:
        assert a.port != b.port
        assert _get(a.url + "/healthz")[0] == 200
        assert _get(b.url + "/healthz")[0] == 200
    finally:
        a.close()
        b.close()
