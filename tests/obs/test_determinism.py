"""The determinism contract: semantic metrics are identical whether a
suite was evaluated serially, across a worker pool, or served from the
artifact cache."""

import os

import pytest

from repro import obs
from repro.obs import export
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.workloads import get
from repro.workloads.base import clear_profile_cache

SUBSET = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()
    yield
    obs.disable()
    obs.registry().clear()
    clear_profile_cache()


def _run(jobs=None, cache=None) -> str:
    clear_profile_cache()
    obs.enable(reset=True)
    pipeline = NeedlePipeline(cache=cache, options=PipelineOptions(jobs=jobs))
    pipeline.evaluate_all([get(n) for n in SUBSET])
    text = export.semantic_json(None)
    obs.disable()
    return text


def test_serial_and_parallel_semantic_metrics_identical():
    assert _run(jobs=None) == _run(jobs=2)


def test_cold_and_cache_served_semantic_metrics_identical(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = _run(cache=cache_dir)
    warm = _run(cache=cache_dir)
    assert cold == warm
    assert cold == _run()  # and both match a cache-less run


@pytest.mark.skipif(
    os.environ.get("REPRO_POOL") == "serial",
    reason="worker-side metrics need a pooled backend; "
    "$REPRO_POOL forces serial",
)
def test_parallel_run_collects_operational_metrics_too():
    clear_profile_cache()
    obs.enable(reset=True)
    pipeline = NeedlePipeline(options=PipelineOptions(jobs=2))
    pipeline.evaluate_all([get(n) for n in SUBSET])
    reg = obs.registry()
    workers = reg.get("pipeline.worker_tasks")
    assert workers is not None
    assert sum(v for _k, v in workers.series()) == len(SUBSET)
    outcomes = reg.get("pipeline.cache_outcome")
    assert sum(v for _k, v in outcomes.series()) == len(SUBSET)
    # worker span trees were adopted under the parent's evaluate_all span
    roots = [r.name for r in reg.span_roots]
    assert "evaluate_all" in roots


def test_memo_hits_do_not_double_count():
    obs.enable(reset=True)
    pipeline = NeedlePipeline()
    w = get("dwt53")
    pipeline.evaluate(w)
    first = export.semantic_json(None)
    pipeline.evaluate(w)  # in-memory memo hit: publishes nothing
    assert export.semantic_json(None) == first


def test_semantic_counters_cover_the_paper_statistics():
    obs.enable(reset=True)
    NeedlePipeline().evaluate(get("dwt53"))
    names = {m.name for m in obs.registry().metrics() if m.semantic}
    for expected in (
        "interp.instructions_retired",
        "interp.memory_trace_events",
        "profile.paths_recorded",
        "sim.cycles",
        "sim.frame_guard_failures",
        "sim.mem_accesses",
        "frames.ops",
        "cgra.schedule_cycles",
    ):
        assert expected in names, expected
