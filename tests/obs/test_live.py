"""ProgressModel folding, atomic progress files, TelemetrySession."""

import json
import os
import threading

from repro.obs import events as ev
from repro.obs.live import (
    LiveAggregator,
    ProgressModel,
    TelemetrySession,
    write_progress,
)


def _feed(model, bus):
    bus.subscribe(model.apply)
    return bus


# -- folding ------------------------------------------------------------------


def test_model_folds_a_plain_run():
    bus = ev.EventBus(run_id="r1")
    model = ProgressModel()
    _feed(model, bus)

    bus.publish(ev.RUN_STARTED, "r1", run_id="r1", stage="evaluate",
                total=3, todo=3, backend="thread", jobs=2)
    for name in ("a", "b", "c"):
        bus.publish(ev.TASK_SCHEDULED, name, attempt=1)
    bus.publish(ev.TASK_STARTED, "a", attempt=1)
    bus.publish(ev.TASK_FINISHED, "a", ok=True, attempts=1, worker="w0")
    bus.publish(ev.TASK_STARTED, "b", attempt=1)

    snap = model.snapshot()
    assert snap["run_id"] == "r1"
    assert snap["state"] == "running"
    assert snap["stage"] == "evaluate"
    assert (snap["total"], snap["done"], snap["queued"]) == (3, 1, 1)
    assert [r["task"] for r in snap["running"]] == ["b"]

    bus.publish(ev.TASK_FINISHED, "b", ok=True, attempts=1)
    bus.publish(ev.TASK_STARTED, "c", attempt=1)
    bus.publish(ev.TASK_FINISHED, "c", ok=True, attempts=1)
    bus.publish(ev.RUN_FINISHED, "r1", status="finished")

    snap = model.snapshot()
    assert snap["state"] == "finished"
    assert snap["done"] == 3
    assert snap["queued"] == 0 and snap["running"] == []
    assert snap["last_seq"] == bus.last_seq()


def test_resumed_workloads_count_as_cumulative_progress():
    """A --resume run reports suite-wide progress, not just its share."""
    bus = ev.EventBus(run_id="r2")
    model = ProgressModel()
    _feed(model, bus)
    bus.publish(ev.RUN_STARTED, "r2", run_id="r2", total=4, todo=2)
    bus.publish(ev.RUN_RESUMED, "a")
    bus.publish(ev.RUN_RESUMED, "b")
    snap = model.snapshot()
    assert snap["done"] == 2 and snap["resumed"] == 2
    # resumed completions say nothing about live throughput
    assert snap["rate_per_second"] is None

    bus.publish(ev.TASK_STARTED, "c", attempt=1)
    bus.publish(ev.TASK_FINISHED, "c", ok=True)
    bus.publish(ev.TASK_STARTED, "d", attempt=1)
    bus.publish(ev.TASK_FINISHED, "d", ok=True)
    snap = model.snapshot()
    assert snap["done"] == 4 and snap["resumed"] == 2


def test_retry_and_quarantine_bookkeeping():
    bus = ev.EventBus()
    model = ProgressModel()
    _feed(model, bus)
    bus.publish(ev.RUN_STARTED, "r", total=2, todo=2)
    bus.publish(ev.TASK_STARTED, "bad", attempt=1)
    bus.publish(ev.RETRY, "bad", kind="exception", attempt=1)
    bus.publish(ev.TASK_STARTED, "bad", attempt=2)
    bus.publish(ev.QUARANTINED, "bad", kind="exception", attempts=2)
    snap = model.snapshot()
    assert snap["retries"] == 1
    assert snap["quarantined"] == ["bad"]
    assert snap["running"] == []


def test_heartbeats_and_stalls_shape_worker_table():
    bus = ev.EventBus()
    model = ProgressModel()
    _feed(model, bus)
    bus.publish(ev.RUN_STARTED, "r", total=1, todo=1)
    bus.publish(ev.TASK_STARTED, "slow", attempt=1)
    bus.publish(ev.WORKER_HEARTBEAT, "slow", worker="proc-1",
                task="slow", phase="simulate", elapsed=2.5)
    snap = model.snapshot()
    (worker,) = snap["workers"]
    assert worker["worker"] == "proc-1"
    assert worker["task"] == "slow" and worker["phase"] == "simulate"
    assert worker["stalled"] is False
    (running,) = snap["running"]
    assert running["phase"] == "simulate"

    bus.publish(ev.WORKER_STALLED, "slow", worker="proc-1",
                silent_for=9.0, attempt=1)
    snap = model.snapshot()
    assert snap["stalls"] == 1
    assert snap["workers"][0]["stalled"] is True
    # a fresh beat clears the stall flag
    bus.publish(ev.WORKER_HEARTBEAT, "slow", worker="proc-1",
                task="slow", phase="simulate", elapsed=11.0)
    assert model.snapshot()["workers"][0]["stalled"] is False


def test_cache_hit_rate():
    bus = ev.EventBus()
    model = ProgressModel()
    _feed(model, bus)
    for _ in range(3):
        bus.publish(ev.CACHE_HIT, "profile")
    bus.publish(ev.CACHE_MISS, "evaluation")
    cache = model.snapshot()["cache"]
    assert (cache["hits"], cache["misses"]) == (3, 1)
    assert cache["hit_rate"] == 0.75


def test_model_is_thread_safe_under_concurrent_apply():
    bus = ev.EventBus(capacity=10_000)
    model = ProgressModel()
    _feed(model, bus)
    bus.publish(ev.RUN_STARTED, "r", total=400, todo=400)

    def work(tid):
        for i in range(100):
            key = "t%d-%d" % (tid, i)
            bus.publish(ev.TASK_STARTED, key, attempt=1)
            bus.publish(ev.TASK_FINISHED, key, ok=True)

    threads = [threading.Thread(target=work, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert model.snapshot()["done"] == 400


# -- progress file ------------------------------------------------------------


def test_write_progress_is_atomic_and_leaves_no_temp(tmp_path):
    path = tmp_path / "progress.json"
    write_progress(str(path), {"state": "running", "done": 1})
    write_progress(str(path), {"state": "finished", "done": 2})
    assert json.loads(path.read_text())["done"] == 2
    leftovers = [n for n in os.listdir(tmp_path) if n != "progress.json"]
    assert leftovers == []


def test_aggregator_persists_snapshots(tmp_path):
    path = tmp_path / "progress.json"
    bus = ev.EventBus(run_id="agg")
    agg = LiveAggregator(bus, progress_path=str(path), write_interval=0.0)
    bus.publish(ev.RUN_STARTED, "agg", run_id="agg", total=1, todo=1)
    bus.publish(ev.TASK_STARTED, "only", attempt=1)
    bus.publish(ev.TASK_FINISHED, "only", ok=True)
    bus.publish(ev.RUN_FINISHED, "agg", status="finished")
    agg.close()
    snap = json.loads(path.read_text())
    assert snap["state"] == "finished" and snap["done"] == 1
    assert snap["run_id"] == "agg"


# -- session ------------------------------------------------------------------


def test_telemetry_session_lifecycle(tmp_path):
    progress = tmp_path / "progress.json"
    events = tmp_path / "events.jsonl"
    session = TelemetrySession(run_id="s1", progress_out=str(progress),
                               events_out=str(events))
    with session:
        assert ev.active() is session.bus
        ev.publish(ev.RUN_STARTED, "s1", run_id="s1", total=1, todo=1)
        ev.publish(ev.TASK_STARTED, "w", attempt=1)
        ev.publish(ev.TASK_FINISHED, "w", ok=True)
    assert ev.active() is None
    snap = json.loads(progress.read_text())
    assert snap["state"] == "finished" and snap["done"] == 1
    kinds = [json.loads(line)["kind"] for line in events.read_text().splitlines()]
    assert kinds[-1] == "run_finished"


def test_telemetry_session_marks_drain_and_abort(tmp_path):
    class FakeDrain(KeyboardInterrupt):
        pass

    for exc_type, status in ((FakeDrain, "drained"), (ValueError, "aborted")):
        path = tmp_path / ("p_%s.json" % status)
        try:
            with TelemetrySession(run_id="x", progress_out=str(path)):
                raise exc_type("boom")
        except exc_type:
            pass
        assert json.loads(path.read_text())["state"] == status
    assert ev.active() is None
