"""`repro top`: source normalisation, rendering, exit behaviour."""

import io
import json

import pytest

from repro.obs.top import (
    ProgressUnavailable,
    fetch_progress,
    normalize_source,
    render_top,
    run_top,
)


def _progress(**overrides):
    base = {
        "run_id": "run-42",
        "stage": "evaluate",
        "state": "running",
        "total": 10,
        "done": 4,
        "resumed": 2,
        "failed": 0,
        "queued": 3,
        "running": [
            {"task": "470.lbm", "worker": "proc-0", "phase": "simulate",
             "elapsed": 12.0, "attempt": 1},
        ],
        "quarantined": ["bad.one"],
        "retries": 1,
        "stalls": 1,
        "workers": [
            {"worker": "proc-0", "task": "470.lbm", "phase": "simulate",
             "idle_for": 0.2, "stalled": False},
            {"worker": "proc-1", "task": "164.gzip", "phase": "run",
             "idle_for": 9.0, "stalled": True},
        ],
        "cache": {"hits": 6, "misses": 2, "hit_rate": 0.75},
        "elapsed_seconds": 65.0,
        "eta_seconds": 90.0,
        "rate_per_second": 0.07,
        "last_seq": 99,
    }
    base.update(overrides)
    return base


def test_normalize_source_shorthands():
    assert normalize_source("9100") == "http://127.0.0.1:9100"
    assert normalize_source("box:9100") == "http://box:9100"
    assert normalize_source("http://box:9100/") == "http://box:9100"
    assert normalize_source("progress.json") == "progress.json"
    assert normalize_source("/tmp/p.json") == "/tmp/p.json"


def test_fetch_progress_from_file(tmp_path):
    path = tmp_path / "p.json"
    path.write_text(json.dumps(_progress()))
    assert fetch_progress(str(path))["run_id"] == "run-42"


def test_fetch_progress_raises_cleanly(tmp_path):
    with pytest.raises(ProgressUnavailable, match="cannot read"):
        fetch_progress(str(tmp_path / "absent.json"))
    bad = tmp_path / "bad.json"
    bad.write_text("{nope")
    with pytest.raises(ProgressUnavailable, match="not valid JSON"):
        fetch_progress(str(bad))
    with pytest.raises(ProgressUnavailable, match="cannot reach"):
        fetch_progress("http://127.0.0.1:1/")  # port 1: nothing listens


def test_render_top_one_screen():
    text = render_top(_progress())
    assert "run-42" in text and "[running]" in text
    assert "4/10 (40%)" in text
    assert "resumed from journal: 2 workloads" in text
    assert "hit-rate 75%" in text
    assert "470.lbm" in text and "simulate" in text
    assert "STALLED" in text and "ok" in text
    assert "quarantined: bad.one" in text
    assert "eta" in text and "1m30s" in text


def test_render_top_survives_minimal_snapshot():
    text = render_top({})
    assert "repro top" in text


def test_run_top_once_renders_and_exits_zero(tmp_path):
    path = tmp_path / "p.json"
    path.write_text(json.dumps(_progress(state="finished", done=10)))
    out = io.StringIO()
    assert run_top(str(path), once=True, stream=out) == 0
    assert "10/10" in out.getvalue()


def test_run_top_stops_on_terminal_state(tmp_path):
    path = tmp_path / "p.json"
    path.write_text(json.dumps(_progress(state="drained")))
    out = io.StringIO()
    assert run_top(str(path), interval=0.01, stream=out) == 0


def test_run_top_once_missing_source_exits_one(tmp_path, capsys):
    assert run_top(str(tmp_path / "never.json"), once=True) == 1
    assert "repro top:" in capsys.readouterr().err
