"""The typed event bus: schema, ordering, JSONL sink, ambient install.

The bus is the spine of live telemetry, so its contracts are locked
hard: the kind vocabulary is closed, sequence numbers are gapless and
monotonic per run (even under concurrent publishers), the JSONL log
round-trips losslessly, and with no ambient bus installed the
module-level ``publish`` is a no-op that never raises.
"""

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import events as ev

# -- schema -------------------------------------------------------------------


def test_kind_vocabulary_is_closed():
    bus = ev.EventBus()
    with pytest.raises(ev.UnknownEventKind):
        bus.publish("task_imploded", "x")
    assert bus.events() == []


def test_every_declared_kind_publishes():
    bus = ev.EventBus(run_id="r")
    for kind in sorted(ev.KINDS):
        bus.publish(kind, "k")
    assert [e.kind for e in bus.events()] == sorted(ev.KINDS)


# -- round-trips (hypothesis) -------------------------------------------------

_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

_data = st.dictionaries(
    st.text(
        alphabet=st.characters(min_codepoint=97, max_codepoint=122),
        min_size=1,
        max_size=12,
    ),
    _json_scalars,
    max_size=5,
)


@settings(max_examples=50, deadline=None)
@given(
    kind=st.sampled_from(sorted(ev.KINDS)),
    key=st.text(max_size=40),
    data=_data,
)
def test_event_json_round_trip(kind, key, data):
    bus = ev.EventBus(run_id="prop")
    event = bus.publish(kind, key, **data)
    line = event.to_json()
    back = ev.Event.from_json(line)
    assert back == event
    # the wire form is deterministic: stable key order, no whitespace
    assert line == back.to_json()
    assert json.loads(line)["kind"] == kind


@settings(max_examples=25, deadline=None)
@given(
    batch=st.lists(
        st.tuples(st.sampled_from(sorted(ev.KINDS)), st.text(max_size=20), _data),
        min_size=1,
        max_size=20,
    )
)
def test_jsonl_log_round_trips(tmp_path_factory, batch):
    path = tmp_path_factory.mktemp("events") / "events.jsonl"
    bus = ev.EventBus(run_id="log")
    bus.attach_jsonl(str(path))
    published = [bus.publish(kind, key, **data) for kind, key, data in batch]
    bus.close()
    lines = path.read_text().splitlines()
    assert [ev.Event.from_json(line) for line in lines] == published
    seqs = [json.loads(line)["seq"] for line in lines]
    assert seqs == list(range(len(seqs)))


# -- sequence numbers ---------------------------------------------------------


def test_seq_is_gapless_and_monotonic():
    bus = ev.EventBus()
    for i in range(50):
        bus.publish(ev.CACHE_HIT, str(i))
    assert [e.seq for e in bus.events()] == list(range(50))
    assert bus.last_seq() == 49


def test_seq_gapless_under_concurrent_publishers():
    bus = ev.EventBus(capacity=10_000)
    n_threads, per_thread = 8, 200

    def hammer(tid):
        for i in range(per_thread):
            bus.publish(ev.WORKER_HEARTBEAT, "%d-%d" % (tid, i))

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    seqs = [e.seq for e in bus.events()]
    assert seqs == list(range(n_threads * per_thread))


def test_since_filters_by_seq():
    bus = ev.EventBus()
    for i in range(10):
        bus.publish(ev.CACHE_MISS, str(i))
    assert [e.seq for e in bus.events(since=6)] == [7, 8, 9]


# -- bounded ring vs complete sink --------------------------------------------


def test_ring_is_bounded_but_sink_is_complete(tmp_path):
    path = tmp_path / "all.jsonl"
    bus = ev.EventBus(capacity=8)
    bus.attach_jsonl(str(path))
    for i in range(100):
        bus.publish(ev.TASK_FINISHED, str(i), ok=True)
    bus.close()
    assert len(bus.events()) == 8
    assert [e.seq for e in bus.events()] == list(range(92, 100))
    assert len(path.read_text().splitlines()) == 100


# -- subscribers --------------------------------------------------------------


def test_subscriber_sees_events_and_exceptions_are_contained():
    bus = ev.EventBus()
    seen = []

    def bad(_event):
        raise RuntimeError("subscriber bug")

    bus.subscribe(bad)
    bus.subscribe(seen.append)
    bus.publish(ev.RETRY, "w", attempt=1)
    assert [e.key for e in seen] == ["w"]
    bus.unsubscribe(seen.append)
    bus.publish(ev.RETRY, "x", attempt=2)
    assert len(seen) == 1


def test_sink_write_failure_drops_sink_not_sweep(tmp_path):
    path = tmp_path / "sink.jsonl"
    bus = ev.EventBus()
    bus.attach_jsonl(str(path))
    bus.publish(ev.CACHE_HIT, "a")
    bus._sink.close()  # simulate the file dying under the bus
    bus.publish(ev.CACHE_HIT, "b")  # must not raise
    assert [e.key for e in bus.events()] == ["a", "b"]


# -- ambient install ----------------------------------------------------------


def test_module_publish_is_noop_without_a_bus():
    assert ev.active() is None
    assert ev.publish(ev.CACHE_HIT, "nothing") is None


def test_install_uninstall_nesting():
    outer, inner = ev.EventBus(), ev.EventBus()
    prev = ev.install(outer)
    assert prev is None
    try:
        previous = ev.install(inner)
        assert previous is outer
        ev.publish(ev.CACHE_HIT, "inner")
        ev.uninstall(previous)
        assert ev.active() is outer
        ev.publish(ev.CACHE_MISS, "outer")
    finally:
        ev.uninstall(None)
    assert ev.active() is None
    assert [e.key for e in inner.events()] == ["inner"]
    assert [e.key for e in outer.events()] == ["outer"]
