"""Span nesting, the disabled fast path, and worker-tree adoption."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NOOP_SPAN, SpanNode


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.disable()
    obs.registry().clear()
    yield
    obs.disable()
    obs.registry().clear()


def test_disabled_span_is_shared_noop_singleton():
    assert obs.span("x") is NOOP_SPAN
    assert obs.span("y", any_label=1) is NOOP_SPAN
    with obs.span("x"):
        pass
    assert obs.registry().span_roots == []


def test_nested_spans_form_a_tree():
    obs.enable(reset=True)
    with obs.span("outer", workload="w"):
        with obs.span("inner"):
            pass
        with obs.span("inner2"):
            pass
    roots = obs.registry().span_roots
    assert len(roots) == 1
    root = roots[0]
    assert root.name == "outer" and root.labels == {"workload": "w"}
    assert [c.name for c in root.children] == ["inner", "inner2"]
    assert root.duration >= sum(c.duration for c in root.children)


def test_span_exits_cleanly_on_exception():
    obs.enable(reset=True)
    with pytest.raises(RuntimeError):
        with obs.span("outer"):
            with obs.span("inner"):
                raise RuntimeError("boom")
    reg = obs.registry()
    assert reg.span_stack == []  # nothing leaked open
    assert [r.name for r in reg.span_roots] == ["outer"]
    assert [c.name for c in reg.span_roots[0].children] == ["inner"]


def test_adopt_spans_under_innermost_open_span():
    reg = MetricsRegistry()
    foreign = [SpanNode(name="worker-span")]
    outer = reg.open_span("outer", {})
    reg.adopt_spans(foreign)
    reg.close_span(outer)
    assert [c.name for c in reg.span_roots[0].children] == ["worker-span"]


def test_adopt_spans_with_nothing_open_becomes_root():
    reg = MetricsRegistry()
    reg.adopt_spans([SpanNode(name="w")])
    assert [r.name for r in reg.span_roots] == ["w"]


def test_span_node_roundtrips_through_dict():
    node = SpanNode(
        name="a", labels={"k": "v"}, start=12.25, duration=0.5,
        children=[SpanNode(name="b", start=12.3)],
    )
    again = SpanNode.from_dict(node.to_dict())
    assert again.name == "a" and again.labels == {"k": "v"}
    assert again.duration == 0.5
    # start must survive the round trip: worker-shipped span trees are
    # rebuilt from dicts and the chrome exporter orders events by it
    assert again.start == 12.25
    assert again.children[0].start == 12.3
    assert [c.name for c in again.children] == ["b"]
    assert [n.name for n in node.walk()] == ["a", "b"]


def test_span_node_from_dict_defaults_missing_start_to_zero():
    # dicts serialized before the start field existed still load
    again = SpanNode.from_dict({"name": "old", "duration": 1.0})
    assert again.start == 0.0 and again.duration == 1.0


def test_scoped_registry_isolates_and_restores():
    obs.enable(reset=True)
    obs.counter("outer.count", 1)
    outer_reg = obs.registry()
    with obs.scoped() as inner:
        obs.counter("inner.count", 1)
        assert obs.registry() is inner
        assert inner.get("outer.count") is None
    assert obs.registry() is outer_reg
    assert obs.registry().get("inner.count") is None
    assert obs.registry().counter("outer.count").value() == 1


def test_scoped_collect_false_disables_collection():
    obs.disable()
    with obs.scoped(collect=False) as inner:
        obs.counter("never", 1)
        assert not obs.enabled()
    assert inner.get("never") is None
