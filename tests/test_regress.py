"""Regression diffing + attribution tables (`repro.reporting.regress`
and the `repro report` subcommand)."""

import json

import pytest

from repro.cli import main
from repro.obs.ledger import AttributionLedger
from repro.reporting import (
    Thresholds,
    diff_snapshots,
    flatten_snapshot,
    metric_direction,
    render_attribution,
    render_diff,
)


# -- direction + thresholds --------------------------------------------------


def test_metric_direction_patterns():
    assert metric_direction("sim_memo.cold_suite_seconds") == "lower"
    assert metric_direction("ledger{...}.cycles") == "lower"
    assert metric_direction("ledger{...}.energy_pj") == "lower"
    assert metric_direction("pipeline_scaling.warm_speedup") == "higher"
    assert metric_direction("profile.top_path_coverage{w=x}") == "higher"
    assert metric_direction("something.unclassified") == "unknown"


def test_thresholds_ignore_beats_override_beats_default():
    t = Thresholds(
        default=0.05,
        overrides=[("*speedup*", 0.5), ("*", 0.1)],
        ignore=["*seconds*"],
    )
    assert t.for_metric("x.cold_serial_seconds") is None
    assert t.for_metric("x.warm_speedup") == 0.5
    assert t.for_metric("anything.else") == 0.1


# -- flattening --------------------------------------------------------------


def test_flatten_generic_bench_json():
    flat = flatten_snapshot({
        "pipeline_scaling": {"jobs": 4, "warm_speedup": 30.0},
        "sim_memo": {
            "per_workload": [
                {"workload": "dwt53", "speedup": 2.5, "note": "str skipped"},
                {"workload": "470.lbm", "speedup": 3.0},
            ],
        },
        "flag": True,  # bools are not metrics
    })
    assert flat["pipeline_scaling.jobs"] == 4.0
    assert flat["pipeline_scaling.warm_speedup"] == 30.0
    assert flat["sim_memo.per_workload{dwt53}.speedup"] == 2.5
    assert flat["sim_memo.per_workload{470.lbm}.speedup"] == 3.0
    assert "flag" not in flat
    assert not any("note" in k for k in flat)


def test_flatten_obs_snapshot_keeps_semantic_and_ledger_only():
    snap = {
        "metrics": [
            {"name": "sim.cycles", "kind": "counter", "semantic": True,
             "series": [{"labels": {"workload": "w"}, "value": 100.0}]},
            {"name": "pipeline.evaluate_seconds", "kind": "gauge",
             "semantic": False,
             "series": [{"labels": {}, "value": 0.5}]},
        ],
        "ledger": {"entries": [
            {"workload": "w", "strategy": "braid", "region": "braid",
             "charge": "transfer", "cycles": 7.0, "energy_pj": 9.0},
        ]},
    }
    flat = flatten_snapshot(snap)
    assert flat["sim.cycles{workload=w}"] == 100.0
    assert not any("evaluate_seconds" in k for k in flat)
    key = "ledger{workload=w,strategy=braid,region=braid,charge=transfer}"
    assert flat[key + ".cycles"] == 7.0
    assert flat[key + ".energy_pj"] == 9.0


# -- diffing -----------------------------------------------------------------


def test_self_diff_is_clean():
    flat = {"a.cycles": 10.0, "b.speedup": 2.0}
    result = diff_snapshots(flat, dict(flat))
    assert result.ok and result.exit_code == 0
    assert all(d.status == "ok" for d in result.deltas)


def test_direction_aware_classification():
    old = {"x.cycles": 100.0, "y.speedup": 2.0, "z.mystery": 1.0}
    new = {"x.cycles": 120.0, "y.speedup": 1.0, "z.mystery": 2.0}
    result = diff_snapshots(old, new)
    status = {d.name: d.status for d in result.deltas}
    assert status["x.cycles"] == "regression"  # more cycles = worse
    assert status["y.speedup"] == "regression"  # less speedup = worse
    assert status["z.mystery"] == "regression"  # unknown: any move gates
    assert result.exit_code == 1


def test_improvements_do_not_gate():
    result = diff_snapshots(
        {"x.cycles": 100.0, "y.speedup": 2.0},
        {"x.cycles": 50.0, "y.speedup": 4.0},
    )
    assert result.ok
    assert {d.status for d in result.deltas} == {"improvement"}


def test_within_threshold_is_ok():
    result = diff_snapshots(
        {"x.cycles": 100.0}, {"x.cycles": 104.0},
        Thresholds(default=0.05),
    )
    assert result.ok


def test_added_and_removed_metrics_never_gate():
    result = diff_snapshots({"gone.cycles": 5.0}, {"new.cycles": 5.0})
    assert result.ok
    assert {d.status for d in result.deltas} == {"added", "removed"}


def test_zero_baseline_gates_on_direction():
    # 0 -> positive on a lower-is-better metric is a regression even
    # though the relative change is undefined
    result = diff_snapshots({"x.failures": 0.0}, {"x.failures": 3.0})
    assert not result.ok
    # and 0 -> 0 stays clean
    assert diff_snapshots({"x.failures": 0.0}, {"x.failures": 0.0}).ok


def test_ignored_metrics_reported_but_not_gated():
    result = diff_snapshots(
        {"t.cold_seconds": 1.0}, {"t.cold_seconds": 99.0},
        Thresholds(ignore=["*seconds*"]),
    )
    assert result.ok
    assert result.deltas[0].status == "ignored"


def test_render_diff_mentions_regressions():
    result = diff_snapshots({"x.cycles": 100.0}, {"x.cycles": 200.0})
    text = render_diff(result)
    assert "regression" in text
    assert "x.cycles" in text
    assert "1 regression" in text


# -- attribution tables ------------------------------------------------------


def _sample_ledger():
    led = AttributionLedger()
    led.charge("w", "braid", "braid", "frame.compute", 80.0, 800.0)
    led.charge("w", "braid", "braid", "frame.guard", 10.0, 50.0)
    led.charge("w", "braid", "braid", "transfer", 5.0, 20.0)
    led.charge("w", "host", "host", "host.compute", 400.0, 4000.0)
    return led


def test_render_attribution_tables():
    text = render_attribution(_sample_ledger())
    assert "Simulated-cycle attribution" in text
    assert "Energy attribution (pJ)" in text
    assert "braid" in text and "host" in text
    # row total folds the charge classes
    assert "95" in text  # 80 + 10 + 5 cycles


def test_render_attribution_empty_ledger_hint():
    text = render_attribution(AttributionLedger())
    assert "no attribution recorded" in text


# -- CLI ---------------------------------------------------------------------


def _write(path, data):
    path.write_text(json.dumps(data))
    return str(path)


def test_cli_report_diff_exit_codes(tmp_path, capsys):
    base = {"sim": {"per_workload": [{"workload": "w", "speedup": 2.0}]}}
    old = _write(tmp_path / "old.json", base)
    same = _write(tmp_path / "same.json", base)
    worse = _write(tmp_path / "worse.json",
                   {"sim": {"per_workload": [{"workload": "w",
                                              "speedup": 1.0}]}})
    assert main(["report", "diff", old, same]) == 0
    capsys.readouterr()
    assert main(["report", "diff", old, worse]) == 1
    assert "regression" in capsys.readouterr().out


def test_cli_report_diff_threshold_and_ignore_flags(tmp_path, capsys):
    old = _write(tmp_path / "o.json", {"a_seconds": 1.0, "b_speedup": 2.0})
    new = _write(tmp_path / "n.json", {"a_seconds": 9.0, "b_speedup": 1.5})
    # seconds ignored, speedup within the loosened tolerance -> clean
    assert main([
        "report", "diff", old, new,
        "--ignore", "*seconds*", "--threshold", "*speedup*=0.5",
    ]) == 0
    capsys.readouterr()
    # default thresholds: both gate
    assert main(["report", "diff", old, new]) == 1
    capsys.readouterr()


def test_cli_report_diff_rejects_malformed_threshold(tmp_path):
    old = _write(tmp_path / "o.json", {"a": 1.0})
    with pytest.raises(SystemExit):
        main(["report", "diff", old, old, "--threshold", "nofraction"])


def test_cli_report_table_runs_and_prints_strategies(capsys):
    assert main(["report", "table", "dwt53", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Simulated-cycle attribution" in out
    assert "bl-path-oracle" in out and "host" in out


def test_cli_report_table_from_snapshot(tmp_path, capsys):
    led = _sample_ledger()
    snap = _write(tmp_path / "m.json", {"ledger": led.snapshot()})
    assert main(["report", "table", "--from", snap]) == 0
    out = capsys.readouterr().out
    assert "Energy attribution" in out and "braid" in out


def test_cli_report_diff_on_committed_bench_json(capsys):
    import os

    bench = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_sim.json",
    )
    # the exact invocation CI's perf-smoke gate uses must self-diff clean
    assert main([
        "report", "diff", bench, bench,
        "--ignore", "*seconds*", "--threshold", "*speedup*=0.5",
    ]) == 0
    capsys.readouterr()
