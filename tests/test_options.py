"""PipelineOptions: the one options surface behind the CLI and the API,
and the jobs/pool validation fallbacks."""

import argparse
import warnings

import pytest

from repro.artifacts import ArtifactCache
from repro.options import (
    POOL_CHOICES,
    PipelineOptions,
    validate_jobs,
    validate_pool,
)
from repro.pipeline import NeedlePipeline
from repro.workloads import get


def test_validate_jobs_passthrough():
    assert validate_jobs(None) is None
    assert validate_jobs(1) == 1
    assert validate_jobs(4) == 4


@pytest.mark.parametrize("bad", [0, -1, -8])
def test_validate_jobs_warns_and_falls_back_to_serial(bad):
    with pytest.warns(UserWarning, match="falling back to serial"):
        assert validate_jobs(bad) is None


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_evaluate_all_with_invalid_jobs_runs_serially():
    pipeline = NeedlePipeline()
    with pytest.warns(UserWarning, match="jobs=-3 is invalid"):
        rows = pipeline.evaluate_all([get("dwt53")], jobs=-3)
    assert len(rows) == 1 and rows[0].name == "dwt53"


def test_validate_pool_defaults_env_and_case(monkeypatch):
    monkeypatch.delenv("REPRO_POOL", raising=False)
    assert POOL_CHOICES == ("auto", "serial", "process", "thread")
    assert validate_pool(None) == "auto"
    assert validate_pool("Thread") == "thread"
    monkeypatch.setenv("REPRO_POOL", "thread")
    assert validate_pool(None) == "thread"
    assert validate_pool("serial") == "serial"  # explicit beats env
    assert PipelineOptions(pool="process").normalized_pool() == "process"


def test_validate_pool_rejects_unknown_backend_by_name():
    with pytest.raises(ValueError, match=r"unknown pool backend 'fibers'"):
        validate_pool("fibers")
    with pytest.raises(ValueError, match="serial, process, thread"):
        PipelineOptions(pool="greenlets").normalized_pool()


def test_cli_rejects_unknown_pool(capsys):
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["evaluate", "--pool", "fibers"])
    err = capsys.readouterr().err
    assert "--pool" in err and "thread" in err


def test_cli_jobs_zero_exits_clean(capsys):
    from repro.cli import main

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert main(["evaluate", "dwt53", "--no-cache", "--jobs", "0"]) == 0
    assert "dwt53" in capsys.readouterr().out


def test_build_cache_honours_no_cache(tmp_path):
    opts = PipelineOptions(cache_dir=str(tmp_path), no_cache=True)
    assert opts.build_cache() is None
    opts = PipelineOptions(cache_dir=str(tmp_path))
    cache = opts.build_cache()
    assert isinstance(cache, ArtifactCache)
    assert str(cache.root) == str(tmp_path)


def test_build_pipeline_threads_options_through(tmp_path):
    opts = PipelineOptions(cache_dir=str(tmp_path), jobs=2)
    pipeline = opts.build_pipeline()
    assert isinstance(pipeline, NeedlePipeline)
    assert pipeline.options is opts
    assert str(pipeline.cache.root) == str(tmp_path)


def test_wants_metrics():
    assert not PipelineOptions().wants_metrics
    assert PipelineOptions(metrics=True).wants_metrics
    assert PipelineOptions(metrics_out="m.json").wants_metrics


def test_cli_arguments_round_trip_through_from_args(tmp_path):
    parser = argparse.ArgumentParser()
    PipelineOptions.add_cli_arguments(parser)
    args = parser.parse_args(
        ["--jobs", "3", "--pool", "thread", "--cache-dir", str(tmp_path),
         "--no-cache", "--metrics", "--metrics-out", "m.json"]
    )
    opts = PipelineOptions.from_args(args)
    assert opts == PipelineOptions(
        jobs=3, pool="thread", cache_dir=str(tmp_path), no_cache=True,
        metrics=True, metrics_out="m.json",
    )


def test_from_args_tolerates_missing_flags():
    # subcommands without --jobs (e.g. analyze) still parse back cleanly
    parser = argparse.ArgumentParser()
    PipelineOptions.add_cli_arguments(parser, jobs=False)
    opts = PipelineOptions.from_args(parser.parse_args([]))
    assert opts.jobs is None and not opts.no_cache


def test_cli_parser_exposes_options_flags():
    from repro.cli import build_parser

    ns = build_parser().parse_args(
        ["evaluate", "--jobs", "2", "--metrics-out", "x.json"]
    )
    opts = PipelineOptions.from_args(ns)
    assert opts.jobs == 2 and opts.metrics_out == "x.json"
