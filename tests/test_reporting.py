from repro.reporting import (
    bar_chart,
    format_cell,
    format_csv,
    format_table,
    histogram,
    stacked_bar_chart,
)


def test_format_cell_styles():
    assert format_cell(5) == "5"
    assert format_cell(5.0) == "5"
    assert format_cell(123.456) == "123"
    assert format_cell(12.34) == "12.3"
    assert format_cell(0.042) == "0.042"
    assert format_cell(float("nan")) == "-"
    assert format_cell("text") == "text"


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [("a", 1), ("longer", 23.5)],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1] == "="
    # all data lines have equal rendered width
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1
    assert "longer" in text and "23.5" in text


def test_format_csv():
    csv = format_csv(["a", "b"], [(1, 2.5), ("x", 0.125)])
    lines = csv.splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,2.5"
    assert lines[2] == "x,0.125"


def test_bar_chart_positive_and_negative():
    chart = bar_chart([("up", 0.5), ("down", -0.25)], title="C", width=20)
    assert "up" in chart and "down" in chart
    assert "#" in chart  # positive bars
    assert "-" in chart  # negative bars render distinctly
    assert "50.0%" in chart and "-25.0%" in chart


def test_bar_chart_empty():
    assert "(no data)" in bar_chart([], title="E")


def test_stacked_bar_chart():
    chart = stacked_bar_chart(
        [("w", [0.5, 0.3, 0.1]), ("v", [0.05])], title="S", width=20
    )
    assert "90.0%" in chart  # cumulative label for w
    assert "5.0%" in chart
    # stack segments use distinct symbols
    w_line = [l for l in chart.splitlines() if l.startswith("w")][0]
    assert "#" in w_line and "*" in w_line


def test_stacked_bar_chart_empty():
    assert "(no data)" in stacked_bar_chart([])


def test_histogram_delegates_to_bar_chart():
    h = histogram([("bucket", 0.4)], title="H")
    assert "bucket" in h and "40.0%" in h
