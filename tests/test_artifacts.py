"""Artifact cache: keys, storage, corruption tolerance, profile wiring."""

import os

import pytest

from repro import workloads
from repro.artifacts import (
    EVALUATION_KIND,
    PROFILE_KIND,
    ArtifactCache,
    workload_key,
)
from repro.sim.config import DEFAULT_CONFIG, OffloadConfig, SystemConfig
from repro.workloads.base import ProfiledWorkload, profile_workload


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(str(tmp_path / "artifacts"))


def test_workload_key_is_stable():
    w = workloads.get("164.gzip")
    key1, _ = workload_key(w, DEFAULT_CONFIG)
    key2, _ = workload_key(w, DEFAULT_CONFIG)
    assert key1 == key2
    assert len(key1) == 64  # sha256 hex


def test_workload_key_separates_workloads_and_configs():
    gzip = workloads.get("164.gzip")
    lbm = workloads.get("470.lbm")
    key_gzip, _ = workload_key(gzip, DEFAULT_CONFIG)
    key_lbm, _ = workload_key(lbm, DEFAULT_CONFIG)
    assert key_gzip != key_lbm

    eager = SystemConfig(offload=OffloadConfig(detect_failure_at_end=False))
    key_eager, _ = workload_key(gzip, eager)
    assert key_eager != key_gzip

    # profiles are config-independent: config=None gives its own key space
    key_none, _ = workload_key(gzip, None)
    assert key_none not in (key_gzip, key_eager)


def test_put_get_roundtrip(cache):
    assert cache.get(EVALUATION_KIND, "ab" * 32) is None
    assert cache.misses == 1
    assert cache.put(EVALUATION_KIND, "ab" * 32, {"x": 1})
    assert cache.get(EVALUATION_KIND, "ab" * 32) == {"x": 1}
    assert cache.hits == 1


def test_corrupt_entry_is_a_miss_and_evicted(cache):
    key = "cd" * 32
    cache.put(PROFILE_KIND, key, [1, 2, 3])
    path = cache._path(PROFILE_KIND, key)
    with open(path, "wb") as fh:
        fh.write(b"not a pickle at all")
    assert cache.get(PROFILE_KIND, key) is None
    assert not os.path.exists(path)  # evicted
    # pipeline would recompute and overwrite:
    cache.put(PROFILE_KIND, key, [1, 2, 3])
    assert cache.get(PROFILE_KIND, key) == [1, 2, 3]


def test_unserialisable_put_is_refused_not_fatal(cache):
    assert not cache.put(EVALUATION_KIND, "ef" * 32, lambda: None)


def test_clear(cache):
    cache.put(PROFILE_KIND, "aa" * 32, 1)
    cache.put(EVALUATION_KIND, "bb" * 32, 2)
    assert cache.clear() == 2
    assert cache.get(PROFILE_KIND, "aa" * 32) is None


def test_env_var_overrides_default_root(tmp_path, monkeypatch):
    from repro.artifacts import CACHE_DIR_ENV, default_cache_dir

    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env-cache"))
    assert default_cache_dir() == str(tmp_path / "env-cache")
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_dir().endswith(os.path.join(".cache", "repro-needle"))


def test_profile_workload_roundtrips_through_cache(cache):
    w = workloads.get("164.gzip")
    fresh = profile_workload(w, use_cache=False, artifact_cache=cache)
    assert cache.hits == 0 and cache.misses == 1

    reloaded = profile_workload(w, use_cache=False, artifact_cache=cache)
    assert cache.hits == 1
    assert isinstance(reloaded, ProfiledWorkload)
    assert reloaded is not fresh  # came off disk, not memory
    assert reloaded.workload is w  # live registry workload reattached
    assert reloaded.paths.counts == fresh.paths.counts
    assert reloaded.paths.trace == fresh.paths.trace
    assert reloaded.trace.memory == fresh.trace.memory
    assert reloaded.result == fresh.result

    # regression: decode() must survive the pickle round-trip — the BL
    # ENTRY/EXIT sentinels come back as equal-but-distinct string objects
    for path_id, _count in fresh.paths.counts.most_common(3):
        assert [b.name for b in reloaded.paths.decode(path_id)] == [
            b.name for b in fresh.paths.decode(path_id)
        ]
