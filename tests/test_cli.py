from repro.cli import MISSING_CELL, evaluation_row, main
from repro.pipeline import AnalysisSummary, WorkloadEvaluation


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "470.lbm" in out and "blackscholes" in out
    assert out.count("\n") >= 29


def test_cli_dump(capsys):
    assert main(["dump", "164.gzip"]) == 0
    out = capsys.readouterr().out
    assert "define i32 @deflate_longest_match" in out
    assert "condbr" in out


def test_cli_analyze(capsys):
    assert main(["analyze", "482.sphinx3", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "executed paths" in out
    assert "braid frame" in out


def test_cli_evaluate_single(capsys):
    assert main(["evaluate", "482.sphinx3"]) == 0
    out = capsys.readouterr().out
    assert "482.sphinx3" in out
    assert "braid" in out


def test_cli_dump_roundtrips_through_parser(capsys):
    from repro.ir import parse_module, verify_module

    main(["dump", "dwt53"])
    text = capsys.readouterr().out
    module = parse_module(text)
    verify_module(module)
    assert "dwt53_row_transpose" in module.functions


def _empty_evaluation(name="barren"):
    """A workload that produced no path frame, no braid frame, nothing."""
    summary = AnalysisSummary(
        name=name,
        suite="spec",
        flavor="int",
        executed_paths=0,
        total_executions=0,
        top_path_coverage=0.0,
        top_path_ops=0,
        braid_n_paths=0,
        braid_coverage=0.0,
        path_frame=None,
        braid_frame=None,
    )
    return WorkloadEvaluation(
        summary=summary,
        path_oracle=None,
        path_history=None,
        braid=None,
        hls=None,
        braid_schedule=None,
    )


def test_evaluation_row_renders_missing_outcomes_as_dashes():
    # regression: this used to raise AttributeError on outcome.<attr>
    row = evaluation_row("barren", _empty_evaluation())
    assert row == ("barren",) + (MISSING_CELL,) * 5


def test_cli_evaluate_prints_dashes_for_missing_outcomes(capsys, monkeypatch):
    import repro.cli as cli
    import repro.workloads as workloads

    class _StubPipeline:
        def evaluate_all(self, suite):
            return [_empty_evaluation(w.name) for w in suite]

    monkeypatch.setattr(cli, "_make_pipeline", lambda args: _StubPipeline())
    monkeypatch.setattr(workloads, "all_names", lambda: ["barren"])
    monkeypatch.setattr(
        workloads, "get", lambda name: type("W", (), {"name": name})()
    )
    assert main(["evaluate"]) == 0
    out = capsys.readouterr().out
    assert "barren" in out
    assert MISSING_CELL in out


def test_cli_evaluate_metrics_out_writes_registry_json(tmp_path, capsys):
    import json

    out_path = tmp_path / "m.json"
    argv = ["evaluate", "dwt53", "--no-cache", "--metrics-out", str(out_path)]
    assert main(argv) == 0
    capsys.readouterr()
    data = json.loads(out_path.read_text())
    names = [m["name"] for m in data["metrics"]]
    assert "interp.instructions_retired" in names
    assert "pipeline.workloads_evaluated" in names
    assert data["spans"], "span tree missing from metrics dump"


def test_cli_metrics_command_table_and_prom(capsys):
    assert main(["metrics", "dwt53", "--no-cache"]) == 0
    table = capsys.readouterr().out
    assert "*interp.instructions_retired" in table
    assert "* = semantic" in table

    assert main(["metrics", "dwt53", "--no-cache", "--format", "prom"]) == 0
    prom = capsys.readouterr().out
    assert "# TYPE interp_instructions_retired counter" in prom
    assert 'interp_instructions_retired{workload="dwt53"}' in prom


def test_cli_metrics_command_json(capsys):
    import json

    assert main(["metrics", "dwt53", "--no-cache", "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert any(
        m["name"] == "sim.cycles" for m in data["metrics"]
    )


def test_cli_trace_command_prints_span_tree(capsys):
    assert main(["trace", "dwt53", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "evaluate (workload=dwt53)" in out
    assert "ms" in out


def test_cli_trace_format_chrome_emits_trace_events(capsys):
    import json

    assert main(["trace", "dwt53", "--no-cache", "--format", "chrome"]) == 0
    doc = json.loads(capsys.readouterr().out)
    events = doc["traceEvents"]
    assert any(e["ph"] == "X" and e["pid"] == 1 for e in events)  # spans
    assert any(e["ph"] == "X" and e["pid"] == 2 for e in events)  # sim tracks
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "dwt53/braid" in names


def test_cli_trace_format_json_emits_span_forest(capsys):
    import json

    assert main(["trace", "dwt53", "--no-cache", "--format", "json"]) == 0
    forest = json.loads(capsys.readouterr().out)
    assert isinstance(forest, list) and forest
    assert any(n["name"] == "evaluate" for n in forest)


def test_cli_trace_without_span_data_exits_cleanly(capsys, monkeypatch):
    import repro.cli as cli

    # simulate a run that recorded nothing: no spans, no sim tracks
    monkeypatch.setattr(
        cli, "_run_evaluations", lambda args, opts: ([], [], None)
    )
    for fmt in ("tree", "json", "chrome"):
        assert main(["trace", "dwt53", "--format", fmt]) == 1
        captured = capsys.readouterr()
        assert "nothing to trace" in captured.err
        assert "Traceback" not in captured.err


def test_cli_evaluate_with_metrics_flag_appends_table(capsys):
    assert main(["evaluate", "dwt53", "--no-cache", "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "Needle offload evaluation" in out  # the normal table first
    assert "* = semantic" in out  # then the metrics listing


def test_cli_evaluate_with_cache_dir_and_jobs(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    argv = ["evaluate", "482.sphinx3", "--cache-dir", cache_dir]
    assert main(argv) == 0
    cold = capsys.readouterr().out

    assert main(argv + ["--jobs", "2"]) == 0  # warm, still exits clean
    warm = capsys.readouterr().out
    assert warm == cold  # cached rows identical to computed rows

    assert main(["evaluate", "482.sphinx3", "--no-cache"]) == 0
    assert capsys.readouterr().out == cold


# -- live telemetry surface ---------------------------------------------------


def test_cli_metrics_from_saved_snapshot(tmp_path, capsys):
    snap = tmp_path / "snap.json"
    assert main(["metrics", "dwt53", "--no-cache",
                 "--metrics-out", str(snap)]) == 0
    capsys.readouterr()
    assert main(["metrics", "--from", str(snap)]) == 0
    table = capsys.readouterr().out
    assert "interp.instructions_retired" in table
    assert main(["metrics", "--from", str(snap), "--format", "prom"]) == 0
    assert "interp_instructions_retired" in capsys.readouterr().out


def test_cli_metrics_from_missing_file_is_clean(capsys):
    import pytest

    with pytest.raises(SystemExit) as excinfo:
        main(["metrics", "--from", "/no/such/snapshot.json"])
    message = str(excinfo.value)
    assert message.startswith("error: cannot read metrics file")
    assert "Traceback" not in message


def test_cli_trace_from_corrupt_file_is_clean(tmp_path):
    import pytest

    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as excinfo:
        main(["trace", "--from", str(bad)])
    assert "not valid JSON" in str(excinfo.value)
    not_a_dict = tmp_path / "list.json"
    not_a_dict.write_text("[1, 2]")
    with pytest.raises(SystemExit) as excinfo:
        main(["metrics", "--from", str(not_a_dict)])
    assert "not a metrics snapshot" in str(excinfo.value)


def test_cli_trace_from_saved_snapshot(tmp_path, capsys):
    snap = tmp_path / "snap.json"
    assert main(["trace", "dwt53", "--no-cache",
                 "--metrics-out", str(snap)]) == 0
    capsys.readouterr()
    assert main(["trace", "--from", str(snap)]) == 0
    assert "evaluate (workload=dwt53)" in capsys.readouterr().out
    # chrome needs the live pipeline for its simulated-cycle tracks
    assert main(["trace", "--from", str(snap), "--format", "chrome"]) == 1
    assert "needs a live run" in capsys.readouterr().err


def test_cli_report_diff_missing_snapshot_is_clean(tmp_path):
    import pytest

    with pytest.raises(SystemExit) as excinfo:
        main(["report", "diff", str(tmp_path / "a.json"),
              str(tmp_path / "b.json")])
    assert str(excinfo.value).startswith("error: cannot read snapshot")


def test_cli_top_once_from_progress_file(tmp_path, capsys):
    import json

    path = tmp_path / "progress.json"
    path.write_text(json.dumps({
        "run_id": "r", "state": "finished", "total": 2, "done": 2,
        "stage": "evaluate",
    }))
    assert main(["top", str(path), "--once"]) == 0
    assert "2/2 (100%)" in capsys.readouterr().out
    assert main(["top", str(tmp_path / "gone.json"), "--once"]) == 1
    assert "repro top:" in capsys.readouterr().err


def test_cli_global_log_level(capsys):
    import logging

    assert main(["--log-level", "DEBUG", "list"]) == 0
    assert logging.getLogger("repro").level == logging.DEBUG
    assert main(["--log-level", "nope", "list"]) == 2
    assert "unknown log level" in capsys.readouterr().err
    main(["--log-level", "WARNING", "list"])  # restore the default
