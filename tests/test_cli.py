from repro.cli import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "470.lbm" in out and "blackscholes" in out
    assert out.count("\n") >= 29


def test_cli_dump(capsys):
    assert main(["dump", "164.gzip"]) == 0
    out = capsys.readouterr().out
    assert "define i32 @deflate_longest_match" in out
    assert "condbr" in out


def test_cli_analyze(capsys):
    assert main(["analyze", "482.sphinx3", "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "executed paths" in out
    assert "braid frame" in out


def test_cli_evaluate_single(capsys):
    assert main(["evaluate", "482.sphinx3"]) == 0
    out = capsys.readouterr().out
    assert "482.sphinx3" in out
    assert "braid" in out


def test_cli_dump_roundtrips_through_parser(capsys):
    from repro.ir import parse_module, verify_module

    main(["dump", "dwt53"])
    text = capsys.readouterr().out
    module = parse_module(text)
    verify_module(module)
    assert "dwt53_row_transpose" in module.functions
