from repro.ir import Argument, Constant, F64, GlobalArray, I32, UndefValue


def test_constant_wraps_to_type_domain():
    c = Constant(I32, 2**32 + 5)
    assert c.value == 5
    assert c.ref == "5"


def test_float_constant_ref():
    c = Constant(F64, 1.5)
    assert c.value == 1.5
    assert "1.5" in c.ref


def test_constant_equality():
    assert Constant(I32, 3) == Constant(I32, 3)
    assert Constant(I32, 3) != Constant(I32, 4)
    assert Constant(I32, 3) != Constant(F64, 3)
    assert len({Constant(I32, 3), Constant(I32, 3)}) == 1


def test_argument_fields():
    a = Argument(I32, "n", 0)
    assert a.name == "n" and a.index == 0 and a.type is I32
    assert a.ref == "%n"


def test_global_array():
    g = GlobalArray("data", I32, 10, init=[1, 2, 3])
    assert g.type.is_ptr
    assert g.size_bytes == 40
    assert g.ref == "@data"
    assert g.init == [1, 2, 3]


def test_undef_ref():
    assert UndefValue(I32).ref == "undef"
