import pytest

from repro.ir import (
    Alloca,
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    Constant,
    F64,
    Gep,
    I32,
    LATENCY,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    UnaryOp,
    is_float_op,
    is_memory_op,
)
from repro.ir.block import BasicBlock
from repro.ir.instructions import ALL_OPCODES


def c(v, t=I32):
    return Constant(t, v)


def test_binop_type_propagates():
    add = BinaryOp("add", c(1), c(2))
    assert add.type is I32
    fadd = BinaryOp("fadd", c(1.0, F64), c(2.0, F64))
    assert fadd.type is F64


def test_binop_rejects_non_binop_opcode():
    with pytest.raises(ValueError):
        BinaryOp("icmp", c(1), c(2))


def test_unop_rejects_bad_opcode():
    with pytest.raises(ValueError):
        UnaryOp("add", c(1), I32)


def test_compare_yields_i1_and_validates_predicate():
    cmp = Compare("icmp", "slt", c(1), c(2))
    assert cmp.type.bits == 1
    with pytest.raises(ValueError):
        Compare("icmp", "olt", c(1), c(2))
    with pytest.raises(ValueError):
        Compare("fcmp", "slt", c(1.0, F64), c(2.0, F64))


def test_every_opcode_has_latency():
    assert set(LATENCY) == set(ALL_OPCODES)
    assert all(l >= 0 for l in LATENCY.values())


def test_category_predicates():
    assert is_memory_op("load") and is_memory_op("store")
    assert not is_memory_op("add")
    assert is_float_op("fadd") and is_float_op("fcmp") and is_float_op("sitofp")
    assert not is_float_op("icmp")


def test_store_is_void_and_accessors():
    st = Store(c(5), c(0x1000))
    assert st.type.is_void
    assert st.value.value == 5
    assert st.address.value == 0x1000


def test_load_accessor():
    ld = Load(I32, c(0x1000))
    assert ld.address.value == 0x1000
    assert ld.type is I32


def test_gep_fields():
    g = Gep(c(0x1000), c(3), 4)
    assert g.elem_size == 4
    assert g.type.is_ptr
    assert g.base.value == 0x1000 and g.index.value == 3


def test_alloca_size():
    a = Alloca(F64, 10)
    assert a.size_bytes == 80
    assert a.type.is_ptr


def test_phi_incoming_management():
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    phi = Phi(I32, "x")
    phi.add_incoming(b1, c(1))
    phi.add_incoming(b2, c(2))
    assert phi.incoming_for(b1).value == 1
    assert phi.incoming_for(b2).value == 2
    assert len(phi.operands) == 2
    phi.remove_incoming(b1)
    assert phi.incoming_for(b1) is None
    assert len(phi.operands) == 1


def test_terminator_successors():
    b1, b2 = BasicBlock("b1"), BasicBlock("b2")
    br = Branch(b1)
    assert br.successors == [b1] and br.is_terminator
    cbr = CondBranch(c(1, I32), b1, b2)
    assert cbr.successors == [b1, b2]
    assert cbr.cond.value == 1
    ret = Ret()
    assert ret.successors == [] and ret.value is None
    ret2 = Ret(c(7))
    assert ret2.value.value == 7


def test_select_type_from_true_value():
    s = Select(c(1), c(2.0, F64), c(3.0, F64))
    assert s.type is F64


def test_replace_operand():
    a, b, d = c(1), c(2), c(9)
    add = BinaryOp("add", a, b)
    assert add.replace_operand(a, d) == 1
    assert add.operands[0] is d
    assert add.replace_operand(a, d) == 0
