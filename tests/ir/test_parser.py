import pytest

from repro.interp import Interpreter
from repro.ir import (
    ParseError,
    format_module,
    parse_function,
    parse_module,
    verify_function,
    verify_module,
)


SIMPLE = """
define i32 @addmul(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, 3
  ret i32 %y
}
"""


def test_parse_simple_function():
    fn = parse_function(SIMPLE)
    verify_function(fn)
    assert fn.name == "addmul"
    assert [a.name for a in fn.args] == ["a", "b"]
    result = Interpreter(fn.module).run("addmul", [2, 3])
    assert result == 15


DIAMOND = """
define i32 @pick(i32 %a, i32 %b) {
entry:
  %c = icmp slt i32 %a, %b
  condbr %c, label %then, label %else
then:
  %t = add i32 %a, 1
  br label %merge
else:
  %e = mul i32 %b, 2
  br label %merge
merge:
  %x = phi i32 [ %t, %then ], [ %e, %else ]
  ret i32 %x
}
"""


def test_parse_diamond_with_phi():
    fn = parse_function(DIAMOND)
    verify_function(fn)
    interp = Interpreter(fn.module)
    assert interp.run("pick", [1, 5]) == 2
    assert interp.run("pick", [5, 1]) == 2


LOOP = """
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp slt i32 %i, %n
  condbr %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""


def test_parse_loop_with_backedge_phi():
    fn = parse_function(LOOP)
    verify_function(fn)
    assert Interpreter(fn.module).run("sum", [10]) == 45


MEMORY = """
@buf = global [16 x i32]

define i32 @touch(i32 %i) {
entry:
  %p = gep @buf, %i, 4
  store i32 42, %p
  %v = load i32, %p
  %s = select %v, i32 %v, 7
  ret i32 %s
}
"""


def test_parse_globals_memory_select():
    m = parse_module(MEMORY)
    verify_module(m)
    assert "buf" in m.globals
    assert Interpreter(m).run("touch", [3]) == 42


CALLS = """
define i32 @sq(i32 %x) {
entry:
  %y = mul i32 %x, %x
  ret i32 %y
}

define i32 @main(i32 %v) {
entry:
  %r = call i32 @sq(i32 %v)
  %out = add i32 %r, 1
  ret i32 %out
}
"""


def test_parse_calls():
    m = parse_module(CALLS)
    verify_module(m)
    assert Interpreter(m).run("main", [6]) == 37


FLOATS = """
define f64 @fma(f64 %x) {
entry:
  %a = fmul f64 %x, 2.5
  %b = fadd f64 %a, 1.0
  %c = fsqrt f64 %b
  %d = fcmp ogt f64 %c, 0.0
  %e = select %d, f64 %c, 0.0
  ret f64 %e
}
"""


def test_parse_float_and_unops():
    fn = parse_function(FLOATS)
    verify_function(fn)
    assert Interpreter(fn.module).run("fma", [6.0]) == 4.0


def test_comments_and_blank_lines_ignored():
    text = "; leading comment\n\n" + SIMPLE.replace(
        "%y = mul i32 %x, 3", "%y = mul i32 %x, 3   ; triple it"
    )
    fn = parse_function(text)
    assert Interpreter(fn.module).run("addmul", [1, 1]) == 6


def test_parse_errors():
    with pytest.raises(ParseError, match="undefined value"):
        parse_function("define i32 @f(i32 %a) {\nentry:\n  ret i32 %nope\n}")
    with pytest.raises(ParseError, match="unknown opcode"):
        parse_function("define i32 @f(i32 %a) {\nentry:\n  %x = frob i32 %a, 1\n  ret i32 %x\n}")
    with pytest.raises(ParseError, match="redefinition"):
        parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  %x = add i32 %a, 1\n"
            "  %x = add i32 %a, 2\n  ret i32 %x\n}"
        )
    with pytest.raises(ParseError, match="top-level"):
        parse_module("banana")
    with pytest.raises(ParseError, match="never defined"):
        parse_function(
            "define i32 @f(i32 %a) {\nentry:\n  br label %ghost\n}"
        )


def test_roundtrip_fixture_functions(diamond, counted_loop, loop_with_branch, array_sum):
    """print -> parse -> print is a fixpoint on hand-built functions."""
    for m, fn in (diamond, counted_loop, loop_with_branch, array_sum):
        text = format_module(m)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


def test_roundtrip_whole_workload_suite():
    """Every one of the 29 workload modules round-trips through text."""
    from repro.workloads import all_workloads

    for w in all_workloads():
        module, fn, _args = w.build()
        text = format_module(module)
        reparsed = parse_module(text)
        verify_module(reparsed)
        assert format_module(reparsed) == text


def test_roundtrip_preserves_semantics(loop_with_branch):
    m, fn = loop_with_branch
    reparsed = parse_module(format_module(m))
    a = Interpreter(m).run(fn.name, [50])
    b = Interpreter(reparsed).run(fn.name, [50])
    assert a == b
