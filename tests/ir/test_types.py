import pytest

from repro.ir import F32, F64, I1, I32, I64, I8, PTR, Type, VOID, type_from_name


def test_singleton_identity_by_name():
    assert type_from_name("i32") is I32
    assert type_from_name("f64") is F64
    assert type_from_name("ptr") is PTR
    assert type_from_name("void") is VOID


def test_unknown_type_name_raises():
    with pytest.raises(ValueError):
        type_from_name("i7")


def test_predicates():
    assert I32.is_int and not I32.is_float and not I32.is_ptr
    assert F64.is_float and not F64.is_int
    assert PTR.is_ptr
    assert VOID.is_void


def test_size_bytes():
    assert I8.size_bytes == 1
    assert I32.size_bytes == 4
    assert I64.size_bytes == 8
    assert F32.size_bytes == 4
    assert F64.size_bytes == 8
    assert PTR.size_bytes == 8
    assert VOID.size_bytes == 0
    assert I1.size_bytes == 1  # stored as one byte


def test_int_wrap_two_complement():
    assert I8.wrap(127) == 127
    assert I8.wrap(128) == -128
    assert I8.wrap(255) == -1
    assert I8.wrap(-129) == 127
    assert I32.wrap(2**31) == -(2**31)


def test_i1_wrap():
    assert I1.wrap(0) == 0
    assert I1.wrap(1) == 1
    assert I1.wrap(2) == 0
    assert I1.wrap(3) == 1


def test_float_wrap_coerces():
    assert F64.wrap(3) == 3.0
    assert isinstance(F64.wrap(3), float)


def test_ptr_wrap_unsigned():
    assert PTR.wrap(-1) == 2**64 - 1


def test_void_has_no_values():
    with pytest.raises(TypeError):
        VOID.wrap(0)


def test_equality_and_hash():
    assert I32 == Type("int", 32)
    assert hash(I32) == hash(Type("int", 32))
    assert I32 != I64
    assert str(I32) == "i32" and str(F32) == "f32"
