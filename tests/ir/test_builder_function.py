import pytest

from repro.ir import I32, IRBuilder, Module, format_function


def test_builder_coerces_python_numbers(diamond):
    _, fn = diamond
    # the diamond fixture used int literals; find the constant on the add
    add = [i for i in fn.instructions() if i.opcode == "add"][0]
    assert add.operands[1].value == 1
    assert add.operands[1].type is I32


def test_builder_names_are_unique():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    x1 = b.add(fn.arg("a"), 1, name="x")
    x2 = b.add(fn.arg("a"), 2, name="x")
    assert x1.name != x2.name


def test_builder_refuses_append_after_terminator():
    m = Module()
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    b.ret(0)
    with pytest.raises(RuntimeError):
        b.add(1, 2)


def test_builder_requires_block():
    m = Module()
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    with pytest.raises(RuntimeError):
        b.add(1, 2)


def test_phi_inserted_before_non_phis():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    b.set_block(entry)
    x = b.add(fn.arg("a"), 1)
    phi = b.phi(I32)
    assert entry.instructions[0] is phi
    assert entry.instructions[1] is x


def test_sugar_methods_exist():
    m = Module()
    fn = m.add_function("f", [("a", I32), ("b", I32)], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    for name in ("add", "sub", "mul", "sdiv", "srem", "and_", "or_", "xor",
                 "shl", "lshr", "ashr", "smin", "smax"):
        inst = getattr(b, name)(fn.arg("a"), fn.arg("b"))
        assert inst.type is I32


def test_call_arity_checked():
    m = Module()
    callee = m.add_function("g", [("x", I32)], I32)
    bc = IRBuilder(callee)
    bc.set_block(bc.add_block("entry"))
    bc.ret(callee.arg("x"))
    fn = m.add_function("f", [], I32)
    b = IRBuilder(fn)
    b.set_block(b.add_block("entry"))
    with pytest.raises(ValueError):
        b.call(callee, [])


def test_function_queries(loop_with_branch):
    _, fn = loop_with_branch
    assert fn.entry.name == "entry"
    assert fn.instruction_count == sum(len(blk) for blk in fn.blocks)
    assert len(fn.branches()) == 3
    assert fn.get_block("header").name == "header"
    with pytest.raises(KeyError):
        fn.get_block("nope")
    with pytest.raises(KeyError):
        fn.arg("nope")


def test_module_duplicate_names():
    m = Module()
    m.add_function("f")
    with pytest.raises(ValueError):
        m.add_function("f")
    m.add_global("g", I32, 4)
    with pytest.raises(ValueError):
        m.add_global("g", I32, 4)
    with pytest.raises(KeyError):
        m.get_function("missing")
    with pytest.raises(KeyError):
        m.get_global("missing")


def test_printer_round_readable(diamond):
    _, fn = diamond
    text = format_function(fn)
    assert "define i32 @diamond" in text
    assert "icmp slt" in text
    assert "phi i32" in text
    assert "condbr" in text
    assert text.count("ret") == 1
