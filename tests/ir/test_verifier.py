import pytest

from repro.ir import (
    Branch,
    Constant,
    I32,
    IRBuilder,
    Module,
    Phi,
    VerificationError,
    verify_function,
    verify_module,
)
from repro.ir.instructions import BinaryOp, Ret


def _open_fn():
    m = Module()
    fn = m.add_function("f", [("a", I32)], I32)
    return m, fn, IRBuilder(fn)


def test_missing_terminator_detected():
    _, fn, b = _open_fn()
    b.set_block(b.add_block("entry"))
    b.add(fn.arg("a"), 1)
    with pytest.raises(VerificationError, match="no terminator"):
        verify_function(fn)


def test_foreign_block_target_detected():
    m, fn, b = _open_fn()
    other_fn = m.add_function("g", [], I32)
    foreign = other_fn.add_block("foreign")
    entry = b.add_block("entry")
    b.set_block(entry)
    entry.append(Branch(foreign))
    with pytest.raises(VerificationError, match="foreign"):
        verify_function(fn)


def test_unreachable_block_detected():
    _, fn, b = _open_fn()
    b.set_block(b.add_block("entry"))
    b.ret(0)
    dead = b.add_block("dead")
    b.set_block(dead)
    b.ret(1)
    with pytest.raises(VerificationError, match="unreachable"):
        verify_function(fn)


def test_phi_incoming_mismatch_detected():
    _, fn, b = _open_fn()
    entry = b.add_block("entry")
    next_ = b.add_block("next")
    b.set_block(entry)
    b.br(next_)
    b.set_block(next_)
    phi = b.phi(I32)
    # wrong: incoming from 'next' itself, not from 'entry'
    phi.add_incoming(next_, Constant(I32, 0))
    b.ret(phi)
    with pytest.raises(VerificationError, match="incoming"):
        verify_function(fn)


def test_phi_after_non_phi_detected():
    _, fn, b = _open_fn()
    entry = b.add_block("entry")
    next_ = b.add_block("next")
    b.set_block(entry)
    b.br(next_)
    b.set_block(next_)
    x = b.add(fn.arg("a"), 1)
    phi = Phi(I32, "late")
    phi.add_incoming(entry, Constant(I32, 0))
    next_.append(phi)
    next_.append(Ret(x))
    with pytest.raises(VerificationError, match="after non-phi"):
        verify_function(fn)


def test_use_before_def_same_block_detected():
    _, fn, b = _open_fn()
    entry = b.add_block("entry")
    b.set_block(entry)
    first = b.add(fn.arg("a"), 1)
    second = b.add(fn.arg("a"), 2)
    # swap so 'first' uses 'second' before its definition
    use = BinaryOp("add", second, Constant(I32, 0), "bad")
    entry.insert(0, use)
    entry.append(Ret(use))
    with pytest.raises(VerificationError, match="does not follow"):
        verify_function(fn)


def test_def_must_dominate_use_across_blocks():
    _, fn, b = _open_fn()
    entry = b.add_block("entry")
    left = b.add_block("left")
    right = b.add_block("right")
    merge = b.add_block("merge")
    b.set_block(entry)
    cond = b.icmp("slt", fn.arg("a"), 0)
    b.condbr(cond, left, right)
    b.set_block(left)
    x = b.add(fn.arg("a"), 1)
    b.br(merge)
    b.set_block(right)
    b.br(merge)
    b.set_block(merge)
    # x does not dominate merge
    y = b.add(x, 1)
    b.ret(y)
    with pytest.raises(VerificationError):
        verify_function(fn)


def test_valid_functions_pass(diamond, counted_loop, loop_with_branch, array_sum):
    for m, fn in (diamond, counted_loop, loop_with_branch, array_sum):
        verify_function(fn)  # no raise
        verify_module(m)


def test_terminator_mid_block_detected():
    _, fn, b = _open_fn()
    entry = b.add_block("entry")
    b.set_block(entry)
    b.ret(0)
    entry.append(Ret(Constant(I32, 1)))
    with pytest.raises(VerificationError, match="mid-block"):
        verify_function(fn)
