"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=180):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    res = _run("quickstart.py")
    assert res.returncode == 0, res.stderr
    assert "performance improvement" in res.stdout
    assert "guard" in res.stdout


def test_analyze_workload_runs():
    res = _run("analyze_workload.py", "482.sphinx3")
    assert res.returncode == 0, res.stderr
    assert "accelerator design analysis" in res.stdout
    assert "HLS estimate" in res.stdout


def test_analyze_workload_list():
    res = _run("analyze_workload.py", "--list")
    assert res.returncode == 0, res.stderr
    assert res.stdout.count("\n") >= 29


def test_braid_tradeoffs_runs():
    res = _run("braid_tradeoffs.py", "186.crafty", "--depths", "1", "4")
    assert res.returncode == 0, res.stderr
    assert "Braid merge depth sweep" in res.stdout


def test_custom_kernel_dsl_runs():
    res = _run("custom_kernel_dsl.py")
    assert res.returncode == 0, res.stderr
    assert "braid coverage" in res.stdout


def test_compiler_pipeline_runs():
    res = _run("compiler_pipeline.py")
    assert res.returncode == 0, res.stderr
    assert "inlined 1 call(s)" in res.stdout
    assert "offload:" in res.stdout


def test_design_space_runs():
    res = _run("design_space.py", "456.hmmer")
    assert res.returncode == 0, res.stderr
    assert "Pareto" in res.stdout
    assert "fastest point" in res.stdout
