"""Statistical properties of the workload input generators: the bias and
temporal-correlation knobs the Fig. 9 predictor behaviour depends on."""

import statistics

from repro.workloads.data import (
    correlated_bits,
    iid_floats,
    iid_ints,
    run_structured_values,
    smooth_floats,
)


def _runs(bits):
    out, cur, n = [], bits[0], 0
    for b in bits:
        if b == cur:
            n += 1
        else:
            out.append(n)
            cur, n = b, 1
    out.append(n)
    return out


def test_correlated_bits_set_fraction():
    vals = correlated_bits(7, 20_000, bit=3, p_set=0.8, mean_run=16)
    frac = sum(1 for v in vals if v & 8) / len(vals)
    assert 0.75 < frac < 0.85


def test_correlated_bits_have_long_runs():
    vals = correlated_bits(7, 20_000, bit=3, p_set=0.5, mean_run=16)
    bits = [(v >> 3) & 1 for v in vals]
    mean_run = statistics.mean(_runs(bits))
    # geometric redraw every ~16 elements (at p=0.5 half the redraws flip)
    assert mean_run > 8


def test_iid_bits_have_short_runs():
    vals = iid_ints(7, 20_000)
    bits = [(v >> 3) & 1 for v in vals]
    assert statistics.mean(_runs(bits)) < 3


def test_correlated_bits_other_bits_noise():
    vals = correlated_bits(11, 10_000, bit=0, p_set=0.9, mean_run=16)
    other = [(v >> 5) & 1 for v in vals]
    frac = sum(other) / len(other)
    assert 0.45 < frac < 0.55  # unrelated bits stay ~uniform


def test_smooth_floats_bounded_and_smooth():
    vals = smooth_floats(3, 10_000, 1.0, 2.0, step=0.05)
    assert all(1.0 <= v <= 2.0 for v in vals)
    deltas = [abs(a - b) for a, b in zip(vals, vals[1:])]
    assert max(deltas) <= 0.11  # one reflected step of 0.05 * span
    # smooth: neighbouring values are far closer than random pairs
    iid = iid_floats(3, 10_000, 1.0, 2.0)
    iid_deltas = [abs(a - b) for a, b in zip(iid, iid[1:])]
    assert statistics.mean(deltas) < statistics.mean(iid_deltas) / 3


def test_run_structured_values_choices_and_runs():
    vals = run_structured_values(5, 5_000, [1, 2, 3], mean_run=20)
    assert set(vals) <= {1, 2, 3}
    assert statistics.mean(_runs(vals)) > 8


def test_generators_are_deterministic():
    assert correlated_bits(9, 100, 2, 0.7) == correlated_bits(9, 100, 2, 0.7)
    assert smooth_floats(9, 100, 0, 1) == smooth_floats(9, 100, 0, 1)
    assert iid_ints(9, 50) == iid_ints(9, 50)
    assert correlated_bits(9, 100, 2, 0.7) != correlated_bits(10, 100, 2, 0.7)
