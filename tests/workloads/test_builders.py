import pytest

from repro.interp import Interpreter
from repro.ir import verify_function
from repro.workloads import (
    Arith,
    ArraySpec,
    BreakIf,
    If,
    LoadVal,
    Loop,
    StoreVal,
    build_loop_kernel,
)


def run(segments, n=10, arrays=(), **kwargs):
    m, fn = build_loop_kernel("t", "k", segments, arrays=arrays, **kwargs)
    verify_function(fn)
    return Interpreter(m).run("k", [n]), m, fn


def test_plain_arith_chain():
    result, _, _ = run([Arith(3, ops=("add",))])
    # acc += 1+2+3 per iteration (k%11+1 for k=0,1,2)
    assert result == 10 * (1 + 2 + 3)


def test_unchained_arith_reduces():
    result, _, fn = run([Arith(8, chained=False, ops=("add",))], n=1)
    assert result != 0
    # fan + reduction structure exists: more than one add in the body
    body_adds = sum(
        1 for i in fn.instructions() if i.opcode == "add"
    )
    assert body_adds >= 4


def test_if_merges_state_with_phi():
    _, m, fn = run(
        [If(("mod", "i", 2, 0), then=[Arith(2, ops=("add",))], els=[Arith(1, ops=("add",))])]
    )
    phis = [i for i in fn.instructions() if i.opcode == "phi"]
    # i, acc at the header + the diamond merge + result
    assert len(phis) >= 4


def test_if_semantics():
    result, _, _ = run(
        [If(("mod", "i", 2, 0), then=[Arith(1, ops=("add",))], els=[])], n=10
    )
    # +1 on even iterations only
    assert result == 5


def test_nested_if():
    result, _, _ = run(
        [
            If(
                ("mod", "i", 2, 0),
                then=[If(("mod", "i", 4, 0), then=[Arith(1, ops=("add",))], els=[])],
                els=[],
            )
        ],
        n=16,
    )
    assert result == 4  # i in {0,4,8,12}


def test_load_store_roundtrip():
    result, m, fn = run(
        [
            LoadVal("src", dst="v"),
            Arith(1, use="v", ops=("add",)),
            StoreVal("dst", value="acc"),
        ],
        n=4,
        arrays=[ArraySpec("src", 8, init=[10, 20, 30, 40, 0, 0, 0, 0]), ArraySpec("dst", 8)],
    )
    # Arith(1, use="v") folds the loaded value into acc each iteration:
    # 10 + 20 + 30 + 40 = 100
    assert result == 100


def test_break_at_top_level_exits_function():
    result, _, _ = run([Arith(1, ops=("add",)), BreakIf(("gt", "acc", 3))], n=100)
    assert result == 4  # 1 per iteration, breaks once acc exceeds 3


def test_nested_loop_executes():
    result, _, fn = run([Loop(3, [Arith(1, ops=("add",))])], n=5)
    assert result == 15  # 3 inner * 5 outer


def test_break_inside_nested_loop_exits_only_that_loop():
    # inner loop of 10 breaks when j-accumulated value crosses a bound
    result, _, _ = run(
        [
            Loop(10, [Arith(1, ops=("add",)), BreakIf(("gt", "acc", 1000))]),
            Arith(1, ops=("add",)),
        ],
        n=5,
    )
    # outer loop still runs all 5 iterations (function does not end early)
    assert result == 5 * 10 + 5


def test_break_in_nested_loop_merges_state():
    m, fn = build_loop_kernel(
        "t2",
        "k2",
        [
            Loop(
                8,
                [Arith(1, ops=("add",)), BreakIf(("mod", "j", 4, 3))],
                induction="j",
            )
        ],
    )
    verify_function(fn)
    # breaks at j==3 after the add: 4 adds per outer iteration
    assert Interpreter(m).run("k2", [6]) == 24


def test_fp_accumulators():
    result, _, _ = run(
        [Arith(2, fp=True, acc="facc", ops=("fadd",))],
        n=3,
        fp_accs=("facc",),
        return_var="facc",
    )
    assert isinstance(result, float)
    assert result == 3 * (1.0 + 1.125)


def test_array_size_must_be_power_of_two():
    with pytest.raises(ValueError):
        ArraySpec("bad", 100)


def test_unknown_condition_rejected():
    with pytest.raises(ValueError):
        run([If(("nope", "i", 1), then=[], els=[])])


def test_unknown_segment_rejected():
    with pytest.raises(TypeError):
        run(["not a segment"])
