import pytest

from repro.ir import verify_module
from repro.profiling import rank_paths, top_k_coverage
from repro.workloads import (
    all_names,
    all_workloads,
    get,
    profile_workload,
    suite,
)


def test_suite_has_29_workloads():
    assert len(all_names()) == 29
    assert len(all_workloads()) == 29


def test_registry_lookup():
    w = get("470.lbm")
    assert w.name == "470.lbm"
    with pytest.raises(KeyError, match="unknown workload"):
        get("471.lbm")


def test_suite_partition():
    spec = suite("spec")
    parsec = suite("parsec")
    perfect = suite("perfect")
    assert len(spec) == 18
    assert len(parsec) + len(perfect) == 11
    names = {w.name for w in spec + parsec + perfect}
    assert names == set(all_names())


@pytest.mark.parametrize("name", all_names())
def test_workload_builds_and_verifies(name):
    w = get(name)
    module, fn, args = w.build()
    verify_module(module)
    assert fn.name in module.functions
    assert len(args) == len(fn.args)


@pytest.mark.parametrize("name", all_names())
def test_workload_profiles(name):
    profiled = profile_workload(get(name))
    assert profiled.paths.executed_paths >= 2
    assert profiled.paths.total_executions > 10
    assert profiled.trace.dynamic_instructions > 500
    # every profiled path decodes to a real CFG walk
    top = profiled.paths.top_paths(3)
    for pid, _count in top:
        blocks = profiled.paths.decode(pid)
        for a, b in zip(blocks, blocks[1:]):
            assert b in a.successors


def test_build_is_deterministic():
    w = get("186.crafty")
    p1 = profile_workload(w, use_cache=False)
    p2 = profile_workload(w, use_cache=False)
    c1 = {pid: c for pid, c in p1.paths.counts.items()}
    c2 = {pid: c for pid, c in p2.paths.counts.items()}
    assert c1 == c2
    assert p1.result == p2.result


def test_profile_cache_returns_same_object():
    w = get("164.gzip")
    a = profile_workload(w)
    b = profile_workload(w)
    assert a is b


def test_coverage_shapes_match_paper_ordering():
    """The paper's qualitative split: some workloads are path-dominated
    (top-5 ≈ 100%), others are path-diffuse (top-5 < 30%)."""
    dominated = ["183.equake", "456.hmmer", "470.lbm", "482.sphinx3", "dwt53"]
    diffuse = ["186.crafty", "458.sjeng", "401.bzip2", "sar-backprojection"]
    for name in dominated:
        cov5 = sum(top_k_coverage(profile_workload(get(name)).paths, 5))
        assert cov5 > 0.8, "%s should be path-dominated (got %.2f)" % (name, cov5)
    for name in diffuse:
        cov5 = sum(top_k_coverage(profile_workload(get(name)).paths, 5))
        assert cov5 < 0.35, "%s should be path-diffuse (got %.2f)" % (name, cov5)


def test_blackscholes_path_is_memory_free_and_huge():
    p = profile_workload(get("blackscholes"))
    top = rank_paths(p.paths, limit=1)[0]
    assert top.ops > 200
    assert top.memory_op_count <= 2
    assert top.branch_count >= 15


def test_swaptions_is_the_biggest_body():
    sizes = {}
    for name in all_names():
        ranked = rank_paths(profile_workload(get(name)).paths, limit=1)
        sizes[name] = ranked[0].ops if ranked else 0
    assert max(sizes, key=sizes.get) == "swaptions"
    assert sizes["swaptions"] > 350


def test_lbm_is_fp_flavoured_and_path_scarce():
    w = get("470.lbm")
    assert w.flavor == "fp"
    p = profile_workload(w)
    assert p.paths.executed_paths <= 8
    top = rank_paths(p.paths, limit=1)[0]
    assert top.memory_op_count >= 25


def test_gcc_has_no_ilp():
    from repro.analysis import DataflowGraph

    p = profile_workload(get("403.gcc"))
    top = rank_paths(p.paths, limit=1)[0]
    insts = [
        i
        for blk in top.blocks
        for i in blk.instructions
        if i.opcode != "phi" and not i.is_terminator
    ]
    dfg = DataflowGraph.build(insts)
    # serial chain: parallelism stays low
    assert dfg.average_parallelism() < 3.0


def test_equake_has_wide_ilp():
    from repro.analysis import DataflowGraph

    p = profile_workload(get("183.equake"))
    top = rank_paths(p.paths, limit=1)[0]
    insts = [
        i
        for blk in top.blocks
        for i in blk.instructions
        if i.opcode != "phi" and not i.is_terminator
    ]
    dfg = DataflowGraph.build(insts, speculative_memory=True)
    assert dfg.average_parallelism() > 4.0


def test_expected_metadata_present():
    for w in all_workloads():
        assert "cov5" in w.expected
        assert "ins" in w.expected
        assert w.description
