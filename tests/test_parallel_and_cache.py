"""Suite fan-out determinism and pipeline-level cache round-trips."""

import pytest

from repro import workloads
from repro.artifacts import ArtifactCache
from repro.cli import evaluation_row
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline, WorkloadEvaluation

#: small but structurally diverse slice of the suite: int + fp, loop-heavy
#: and branchy kernels — enough shapes to catch ordering/pickling bugs
#: without paying for all 29 workloads in one test.
SUBSET = ["164.gzip", "429.mcf", "470.lbm", "dwt53"]


def _suite(names):
    return [workloads.get(name) for name in names]


def _outcome_fields(outcome):
    if outcome is None:
        return None
    return vars(outcome).copy()


def _flatten(ev: WorkloadEvaluation):
    """Every number an evaluation carries, as plain comparable data."""
    return {
        "summary": vars(ev.summary).copy(),
        "path_oracle": _outcome_fields(ev.path_oracle),
        "path_history": _outcome_fields(ev.path_history),
        "braid": _outcome_fields(ev.braid),
        "hls": _outcome_fields(ev.hls),
        "braid_schedule": _outcome_fields(ev.braid_schedule),
    }


def test_parallel_evaluate_matches_serial_bitwise():
    serial = NeedlePipeline().evaluate_all(_suite(SUBSET))
    fanned = NeedlePipeline(
        options=PipelineOptions(jobs=4)
    ).evaluate_all(_suite(SUBSET))

    assert [ev.name for ev in fanned] == SUBSET  # suite order preserved
    for s, p in zip(serial, fanned):
        assert _flatten(s) == _flatten(p)
    # the formatted table rows are the user-visible contract
    for name, s, p in zip(SUBSET, serial, fanned):
        assert evaluation_row(name, s) == evaluation_row(name, p)


def test_parallel_analyse_matches_serial():
    names = SUBSET[:2]
    serial = NeedlePipeline().analyse_all(_suite(names))
    fanned = NeedlePipeline(
        options=PipelineOptions(jobs=2)
    ).analyse_all(_suite(names))
    for s, p in zip(serial, fanned):
        assert s.name == p.name
        assert s.profiled.paths.counts == p.profiled.paths.counts
        assert [r.path_id for r in s.ranked] == [r.path_id for r in p.ranked]
        assert [b.coverage for b in s.braids] == [b.coverage for b in p.braids]


def test_jobs_one_and_single_workload_stay_serial(monkeypatch):
    monkeypatch.delenv("REPRO_POOL", raising=False)
    pipeline = NeedlePipeline()
    assert pipeline._execution_plan(None, 2) == ("serial", 1)
    assert pipeline._execution_plan(1, 2) == ("serial", 1)
    assert pipeline._execution_plan(4, 1) == ("serial", 1)
    # fully memoized suite: nothing left to fan out
    suite = _suite(SUBSET[:2])
    pipeline.evaluate_all(suite)
    todo = [w for w in suite if w.name not in pipeline._evaluations]
    assert pipeline._execution_plan(4, len(todo)) == ("serial", 1)
    # parallel sweeps clamp the pool to the work available
    assert pipeline._execution_plan(4, 2) == ("process", 2)
    assert pipeline._execution_plan(2, 8) == ("process", 2)


def test_evaluation_cache_roundtrip_in_fresh_pipeline(tmp_path):
    cache_dir = str(tmp_path / "cache")
    name = SUBSET[0]

    warm = NeedlePipeline(cache=ArtifactCache(cache_dir))
    first = warm.evaluate(workloads.get(name))
    assert warm.cache.hits == 0

    # a brand-new pipeline (fresh in-memory state) must rebuild the exact
    # OffloadOutcome numbers from disk alone
    cold = NeedlePipeline(cache=ArtifactCache(cache_dir))
    second = cold.evaluate(workloads.get(name))
    assert cold.cache.hits > 0
    assert _flatten(first) == _flatten(second)
    assert second.braid is not None
    assert second.braid.performance_improvement == pytest.approx(
        first.braid.performance_improvement, abs=0.0
    )


def test_corrupt_evaluation_entry_recomputes(tmp_path):
    import glob
    import os

    cache_dir = str(tmp_path / "cache")
    name = SUBSET[0]
    NeedlePipeline(cache=ArtifactCache(cache_dir)).evaluate(workloads.get(name))

    for path in glob.glob(os.path.join(cache_dir, "**", "*.pkl"), recursive=True):
        with open(path, "wb") as fh:
            fh.write(b"\x80garbage")

    pipeline = NeedlePipeline(cache=ArtifactCache(cache_dir))
    ev = pipeline.evaluate(workloads.get(name))
    assert ev.braid is not None  # recomputed, not crashed
    assert pipeline.cache.misses > 0

    clean = NeedlePipeline().evaluate(workloads.get(name))
    assert _flatten(ev) == _flatten(clean)


def test_cache_separates_configs(tmp_path):
    from repro.artifacts import EVALUATION_KIND, workload_key
    from repro.sim.config import DEFAULT_CONFIG, OffloadConfig, SystemConfig

    cache_dir = str(tmp_path / "cache")
    name = SUBSET[0]
    default = NeedlePipeline(cache=ArtifactCache(cache_dir))
    default.evaluate(workloads.get(name))

    # different config ⇒ different evaluation key: the stored evaluation
    # cannot be served, so the eager run must recompute (cache misses).
    # Config-independent sub-simulation tables (calibration/path costs,
    # keyed by the memory/host slice only) *are* legitimately shared —
    # the offload knob below is outside both slices.
    eager_cfg = SystemConfig(offload=OffloadConfig(detect_failure_at_end=False))
    key_default, _ = workload_key(workloads.get(name), DEFAULT_CONFIG)
    key_eager, _ = workload_key(workloads.get(name), eager_cfg)
    assert key_default != key_eager
    eager = NeedlePipeline(eager_cfg, cache=ArtifactCache(cache_dir))
    ev = eager.evaluate(workloads.get(name))
    assert eager.cache.misses > 0
    assert eager.cache.get(EVALUATION_KIND, key_eager) is not None  # stored anew
    reference = NeedlePipeline(eager_cfg).evaluate(workloads.get(name))
    assert _flatten(ev) == _flatten(reference)


def test_pipeline_accepts_cache_path_string(tmp_path):
    pipeline = NeedlePipeline(cache=str(tmp_path / "cache"))
    assert isinstance(pipeline.cache, ArtifactCache)
    pipeline.evaluate(workloads.get(SUBSET[0]))
    assert pipeline.cache.misses > 0  # cold cache was consulted
