"""Live telemetry end to end: the wall-clock-only invariant.

The tentpole contract: turning the event bus, heartbeats, progress
snapshots and the metrics endpoint on must not perturb semantic output.
Evaluation records and semantic metric snapshots are byte-identical
with telemetry on or off, on every pool backend, healthy or under an
injected chaos plan — and a resumed sweep reports *cumulative* progress
(journal-restored workloads count as completed) in its progress file.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs import events as ev
from repro.obs import export
from repro.options import PipelineOptions
from repro.pipeline import NeedlePipeline
from repro.resilience.faults import SITE_WORKER_CRASH, FaultPlan, FaultSpec
from repro.workloads import get
from repro.workloads.base import clear_profile_cache

from tests.test_pools import SUBSET, _flatten


def _suite(names=SUBSET):
    return [get(n) for n in names]


def _sweep(pool, fault_plan=None, telemetry_dir=None, **extra):
    """(flattened rows, semantic JSON) with telemetry on or off.

    ``telemetry_dir`` switches the full stack on: events JSONL,
    progress file and fast heartbeats, exactly as the CLI flags would.
    """
    clear_profile_cache()
    obs.enable(reset=True)
    kwargs = dict(no_cache=True, jobs=2, pool=pool, retries=1,
                  fault_plan=fault_plan)
    if telemetry_dir is not None:
        kwargs.update(
            events_out=os.path.join(str(telemetry_dir), "events.jsonl"),
            progress_out=os.path.join(str(telemetry_dir), "progress.json"),
            heartbeat=0.05,
        )
    kwargs.update(extra)
    rows = NeedlePipeline(options=PipelineOptions(**kwargs)) \
        .evaluate_all(_suite())
    semantic = export.semantic_json(None)
    obs.disable()
    obs.registry().clear()
    return [_flatten(r) for r in rows], semantic


# -- byte-identity, telemetry on vs off ---------------------------------------


@pytest.mark.parametrize("pool", ["serial", "process", "thread"])
def test_semantic_output_identical_with_telemetry_on(pool, tmp_path):
    base_rows, base_sem = _sweep(pool)
    live_rows, live_sem = _sweep(pool, telemetry_dir=tmp_path)
    assert live_rows == base_rows
    assert live_sem == base_sem
    # the telemetry actually ran: a progress file reached a terminal state
    progress = json.loads((tmp_path / "progress.json").read_text())
    assert progress["state"] == "finished"
    assert progress["done"] == len(SUBSET) == progress["total"]


@pytest.mark.chaos
@pytest.mark.parametrize("pool", ["serial", "process", "thread"])
def test_semantic_output_identical_under_crash_plan(pool, tmp_path):
    plan = FaultPlan(seed=11, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="164.gzip", times=-1),
    ))
    base_rows, base_sem = _sweep(pool, fault_plan=plan)
    live_rows, live_sem = _sweep(pool, fault_plan=plan,
                                 telemetry_dir=tmp_path)
    assert live_rows == base_rows
    assert live_sem == base_sem
    progress = json.loads((tmp_path / "progress.json").read_text())
    assert progress["quarantined"] == ["164.gzip"]
    kinds = {json.loads(line)["kind"]
             for line in (tmp_path / "events.jsonl").read_text().splitlines()}
    assert "quarantined" in kinds and "retry" in kinds


# -- the event stream itself --------------------------------------------------


def test_pooled_sweep_emits_gapless_lifecycle_and_heartbeats(tmp_path):
    _sweep("thread", telemetry_dir=tmp_path)
    lines = (tmp_path / "events.jsonl").read_text().splitlines()
    events = [json.loads(line) for line in lines]
    assert [e["seq"] for e in events] == list(range(len(events)))
    kinds = [e["kind"] for e in events]
    assert kinds[0] == "run_started"
    assert kinds[-1] == "run_finished"
    for name in SUBSET:
        assert {"task_scheduled", "task_started", "task_finished"} <= {
            e["kind"] for e in events if e["key"] == name
        }
    beats = [e for e in events if e["kind"] == "worker_heartbeat"]
    assert beats, "a 50ms heartbeat must surface during a multi-second sweep"
    for beat in beats:
        assert beat["data"]["worker"].startswith("thread-")
        assert beat["data"]["elapsed"] >= 0


def test_sweep_leaves_no_ambient_bus_behind(tmp_path):
    assert ev.active() is None
    _sweep("serial", telemetry_dir=tmp_path)
    assert ev.active() is None


# -- resumed sweeps report cumulative progress --------------------------------


def test_resumed_sweep_reports_cumulative_progress(tmp_path):
    """Journal-restored workloads count as completed in /progress.

    First pass: a journaled sweep in which one workload is quarantined
    by an always-crash plan (so the journal holds the other two).
    Second pass: resume without the plan, with telemetry on — the two
    restored workloads must show up as done+resumed, the re-run one as
    live progress, and ``repro top`` must render the cumulative view.
    """
    journal_dir = tmp_path / "journal"
    plan = FaultPlan(seed=7, specs=(
        FaultSpec(site=SITE_WORKER_CRASH, key="470.lbm", times=-1),
    ))
    clear_profile_cache()
    first = PipelineOptions(no_cache=True, jobs=2, pool="thread", retries=0,
                            journal_dir=str(journal_dir), run_id="tele",
                            fault_plan=plan)
    NeedlePipeline(options=first).evaluate_all(_suite())

    progress_path = tmp_path / "progress.json"
    clear_profile_cache()
    second = PipelineOptions(no_cache=True, jobs=2, pool="thread", retries=0,
                             journal_dir=str(journal_dir), resume="tele",
                             progress_out=str(progress_path))
    rows = NeedlePipeline(options=second).evaluate_all(_suite())
    assert not any(hasattr(r, "kind") for r in rows)  # all healthy now

    progress = json.loads(progress_path.read_text())
    assert progress["state"] == "finished"
    assert progress["total"] == len(SUBSET)
    assert progress["done"] == len(SUBSET)   # cumulative, not this-run-only
    assert progress["resumed"] == len(SUBSET) - 1

    from repro.obs.top import render_top

    screen = render_top(progress)
    assert "3/3 (100%)" in screen
    assert "resumed from journal: 2 workloads" in screen
