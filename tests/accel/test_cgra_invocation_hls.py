from repro.accel import (
    CGRAScheduler,
    HLSEstimator,
    HistoryPredictor,
    OraclePredictor,
    evaluate_predictor,
)
from repro.frames import build_frame
from repro.profiling import rank_paths
from repro.regions import build_braids, path_to_region
from repro.sim import CGRAConfig


def _path_frame(profiled):
    m, fn, pp, ep = profiled
    ranked = rank_paths(pp)
    return build_frame(path_to_region(fn, ranked[0])), pp


def _braid_frame(profiled):
    m, fn, pp, ep = profiled
    braid = build_braids(fn, rank_paths(pp))[0]
    return build_frame(braid.region), pp


# -- CGRA scheduling ----------------------------------------------------------


def test_schedule_respects_dependences(profiled_loop_with_branch):
    frame, _ = _path_frame(profiled_loop_with_branch)
    sched = CGRAScheduler().schedule(frame)
    start = {id(o.frame_op): o.start for o in sched.ops}
    finish = {id(o.frame_op): o.finish for o in sched.ops}
    index = {i: o for i, o in enumerate(frame.ops)}
    for op in sched.ops:
        for dep in op.deps:
            dep_op = index[dep]
            assert finish[id(dep_op)] <= op.start, "dep must finish first"


def test_schedule_counts_ops(profiled_loop_with_branch):
    frame, _ = _path_frame(profiled_loop_with_branch)
    sched = CGRAScheduler().schedule(frame)
    assert sched.total_ops == frame.op_count
    assert (
        sched.int_ops + sched.fp_ops + sched.mem_ops + sched.guard_ops
        == frame.op_count
    )
    assert sched.guard_ops == frame.guard_count


def test_schedule_extracts_ilp(profiled_loop_with_branch):
    frame, _ = _path_frame(profiled_loop_with_branch)
    sched = CGRAScheduler().schedule(frame)
    assert 0 < sched.cycles
    assert sched.ilp > 0
    assert sched.n_configs == 1
    # pipelined initiation is much tighter than the makespan
    assert 1 <= sched.initiation_interval <= sched.cycles


def test_small_fabric_needs_multiple_configs(profiled_loop_with_branch):
    frame, _ = _path_frame(profiled_loop_with_branch)
    tiny = CGRAConfig(rows=2, cols=2, reconfig_cycles=16)
    sched = CGRAScheduler(tiny).schedule(frame)
    assert sched.n_configs >= 2
    big = CGRAScheduler().schedule(frame)
    assert sched.cycles >= big.cycles + 16


def test_memory_port_limit(array_sum):
    from tests.conftest import profile_function

    m, fn = array_sum
    pp, ep = profile_function(m, fn, [[16]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    # 1 memory port: loads serialise on the port
    one_port = CGRAScheduler(CGRAConfig(memory_ports=1)).schedule(frame)
    four = CGRAScheduler(CGRAConfig(memory_ports=4)).schedule(frame)
    assert one_port.cycles >= four.cycles


def test_braid_schedule_includes_psis(profiled_anticorrelated):
    frame, _ = _braid_frame(profiled_anticorrelated)
    sched = CGRAScheduler().schedule(frame)
    kinds = {o.frame_op.kind for o in sched.ops}
    assert "psi" in kinds
    assert sched.total_ops == frame.op_count


def test_load_latency_knob(profiled_loop_with_branch):
    from tests.conftest import build_array_sum, profile_function

    m, fn = build_array_sum()
    pp, ep = profile_function(m, fn, [[16]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    slow = CGRAScheduler(load_latency=100).schedule(frame)
    fast = CGRAScheduler(load_latency=2).schedule(frame)
    assert slow.cycles > fast.cycles


# -- invocation prediction --------------------------------------------------------


def test_oracle_is_perfect():
    trace = [1, 1, 2, 1, 3, 1]
    ev = evaluate_predictor(trace, {1}, OraclePredictor({1}))
    assert ev.precision == 1.0 and ev.recall == 1.0
    assert ev.invocations == 4


def test_history_predictor_learns_alternation():
    trace = [1, 2] * 200
    ev = evaluate_predictor(trace, {1}, HistoryPredictor(history_length=1))
    # after warmup the alternating pattern is fully predictable
    assert ev.precision > 0.9
    assert ev.recall > 0.9


def test_history_predictor_on_biased_stream():
    trace = ([1] * 9 + [2]) * 50
    ev = evaluate_predictor(trace, {1}, HistoryPredictor())
    assert ev.precision > 0.85


def test_history_predictor_saturation():
    p = HistoryPredictor()
    key = (1, 2, 3)
    for _ in range(10):
        p.update(key, True)
    assert p.table[key] == 3
    for _ in range(10):
        p.update(key, False)
    assert p.table[key] == 0
    assert not p.predict(key)


def test_predictor_evaluation_counts_consistent():
    trace = [1, 2, 3, 1, 1, 2]
    ev = evaluate_predictor(trace, {1}, OraclePredictor({1}))
    total = (
        ev.true_positives
        + ev.false_positives
        + ev.true_negatives
        + ev.false_negatives
    )
    assert total == len(trace)


# -- HLS estimation ---------------------------------------------------------------


def test_hls_report_fields(profiled_loop_with_branch):
    frame, _ = _path_frame(profiled_loop_with_branch)
    report = HLSEstimator().estimate(frame)
    assert report.ops == frame.op_count
    assert report.alms > 0
    assert 0 < report.alm_fraction < 1
    assert report.fits
    assert report.total_power_mw > report.static_power_mw


def test_hls_fp_costs_more_than_int():
    from repro.ir import F64, I32, IRBuilder, Module, verify_function
    from tests.conftest import profile_function

    def kernel(fp):
        m = Module()
        fn = m.add_function("k", [("n", I32)], I32)
        b = IRBuilder(fn)
        entry = b.add_block("entry")
        header = b.add_block("header")
        body = b.add_block("body")
        exit_ = b.add_block("exit")
        b.set_block(entry)
        b.br(header)
        b.set_block(header)
        from repro.ir import Constant

        i = b.phi(I32, "i")
        c = b.icmp("slt", i, fn.arg("n"))
        b.condbr(c, body, exit_)
        b.set_block(body)
        if fp:
            x = b.unop("sitofp", i, F64)
            for _ in range(8):
                x = b.fmul(x, 1.5)
        else:
            x = i
            for _ in range(8):
                x = b.mul(x, 3)
        i2 = b.add(i, 1)
        b.br(header)
        i.add_incoming(entry, Constant(I32, 0))
        i.add_incoming(body, i2)
        b.set_block(exit_)
        b.ret(i)
        verify_function(fn)
        return m, fn

    reports = []
    for fp in (False, True):
        m, fn = kernel(fp)
        pp, ep = profile_function(m, fn, [[16]])
        frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
        reports.append(HLSEstimator().estimate(frame))
    int_r, fp_r = reports
    assert fp_r.alms > int_r.alms
    assert fp_r.dynamic_power_mw > int_r.dynamic_power_mw
