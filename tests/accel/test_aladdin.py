from repro.accel import (
    AladdinConfig,
    AladdinEstimator,
    AladdinResult,
    FU_LIBRARY,
)
from repro.frames import build_frame
from repro.profiling import rank_paths
from repro.regions import path_to_region
from tests.conftest import build_array_sum, profile_function


def _frame(profiled):
    m, fn, pp, ep = profiled
    return build_frame(path_to_region(fn, rank_paths(pp)[0]))


def test_schedule_respects_dependences(profiled_loop_with_branch):
    frame = _frame(profiled_loop_with_branch)
    est = AladdinEstimator()
    res = est.schedule(frame)
    assert res.latency_cycles > 0
    assert res.dynamic_energy_pj > 0
    assert res.area_mm2 > 0


def test_fewer_units_never_faster(profiled_loop_with_branch):
    frame = _frame(profiled_loop_with_branch)
    est = AladdinEstimator()
    rich = est.schedule(frame, AladdinConfig(int_alus=8, fp_alus=8, mem_ports=4))
    poor = est.schedule(frame, AladdinConfig(int_alus=1, fp_alus=1, mem_ports=1))
    assert poor.latency_cycles >= rich.latency_cycles
    # but the poor allocation leaks less and is smaller
    assert poor.leakage_uw < rich.leakage_uw
    assert poor.area_um2 < rich.area_um2


def test_memory_ports_bind_memory_kernels():
    m, fn = build_array_sum()
    pp, ep = profile_function(m, fn, [[16]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    est = AladdinEstimator()
    one = est.schedule(frame, AladdinConfig(mem_ports=1))
    four = est.schedule(frame, AladdinConfig(mem_ports=4))
    assert one.latency_cycles >= four.latency_cycles


def test_power_includes_leakage():
    m, fn = build_array_sum()
    pp, ep = profile_function(m, fn, [[16]])
    frame = build_frame(path_to_region(fn, rank_paths(pp)[0]))
    res = AladdinEstimator().schedule(frame)
    leak_only = res.leakage_uw / 1000.0
    assert res.power_mw > leak_only


def test_sweep_covers_grid(profiled_loop_with_branch):
    frame = _frame(profiled_loop_with_branch)
    est = AladdinEstimator()
    results = est.sweep(frame, alu_options=(1, 4), fp_options=(1,), mem_options=(1, 2))
    assert len(results) == 4
    assert all(isinstance(r, AladdinResult) for r in results)


def test_pareto_frontier_is_monotone(profiled_loop_with_branch):
    frame = _frame(profiled_loop_with_branch)
    est = AladdinEstimator()
    results = est.sweep(frame)
    frontier = est.pareto(results)
    assert frontier
    # along the frontier: latency increases, power strictly decreases
    lats = [r.latency_cycles for r in frontier]
    pows = [r.power_mw for r in frontier]
    assert lats == sorted(lats)
    assert all(a > b for a, b in zip(pows, pows[1:])) or len(pows) == 1
    # no swept point dominates a frontier point
    for f in frontier:
        for r in results:
            assert not (
                r.latency_cycles < f.latency_cycles and r.power_mw < f.power_mw
            )


def test_fu_library_complete():
    from repro.accel.aladdin import _CLASS_OF

    assert set(_CLASS_OF.values()) <= set(FU_LIBRARY)
    for cls, (dyn, leak, area) in FU_LIBRARY.items():
        assert dyn > 0 and leak > 0 and area > 0
