#!/usr/bin/env python
"""The compiler-side of Needle: text IR -> inline -> optimize -> unroll ->
profile -> offload analysis.

The paper's methodology aggressively inlines call sequences before path
profiling (SII) and leans on loop unrolling to enlarge offload units (SVI).
This example drives those transforms on a kernel written as textual IR.

Run:  python examples/compiler_pipeline.py
"""

from repro.frames import build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.ir import format_function, parse_module, verify_module
from repro.profiling import PathProfiler, rank_paths
from repro.regions import build_braids
from repro.sim import OffloadSimulator
from repro.transforms import inline_all, optimize, unroll_hottest_loop

KERNEL = """
@samples = global [1024 x i32]
@out = global [1024 x i32]

define i32 @weight(i32 %v) {
entry:
  %c = icmp sgt i32 %v, 128
  condbr %c, label %heavy, label %light
heavy:
  %h = mul i32 %v, 3
  br label %join
light:
  %l = add i32 %v, 7
  br label %join
join:
  %w = phi i32 [ %h, %heavy ], [ %l, %light ]
  ret i32 %w
}

define i32 @hot(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  condbr %cond, label %body, label %exit
body:
  %masked = and i32 %i, 1023
  %p = gep @samples, %masked, 4
  %v = load i32, %p
  %w = call i32 @weight(i32 %v)
  %scaled = mul i32 %w, 2
  %acc2 = add i32 %acc, %scaled
  %q = gep @out, %masked, 4
  store i32 %acc2, %q
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"""


def main():
    module = parse_module(KERNEL, name="pipeline-demo")
    verify_module(module)
    hot = module.get_function("hot")
    print("parsed %d functions; @hot has %d instructions"
          % (len(module.functions), hot.instruction_count))

    # reference semantics before any transform
    ref = Interpreter(module).run("hot", [500])

    n_inlined = inline_all(hot)
    counts = optimize(hot)
    loop = unroll_hottest_loop(hot, 2)
    verify_module(module)
    assert Interpreter(module).run("hot", [500]) == ref, "transforms must preserve semantics"
    print("inlined %d call(s); folded %d, cfg %d, dce %d; unrolled %s 2x"
          % (n_inlined, counts["folded"], counts["cfg"], counts["dce"],
             loop.header.name if loop else "<none>"))
    print("\n=== transformed hot function ===")
    print(format_function(hot))

    # profile -> braid -> frame -> simulate
    profiler = PathProfiler([hot])
    recorder = TraceRecorder([hot])
    Interpreter(module, tracer=MultiTracer(profiler, recorder)).run("hot", [500])
    profile = profiler.profile_for(hot)
    ranked = rank_paths(profile)
    print("\npaths after transforms: %d executed" % profile.executed_paths)
    for p in ranked[:3]:
        print("  cov %5.1f%%  ops %3d  branches %d"
              % (p.coverage * 100, p.ops, p.branch_count))

    braid = build_braids(hot, ranked)[0]
    frame = build_frame(braid.region)
    outcome = OffloadSimulator().simulate_offload(
        "pipeline-demo", profile, frame, "oracle", recorder.traces[hot],
        coverage=braid.coverage,
    )
    print("\nbraid: %d paths, %.1f%% coverage, frame %d ops / %d guards"
          % (braid.n_paths, braid.coverage * 100, frame.op_count,
             frame.guard_count))
    print("offload: %+.1f%% performance, %+.1f%% energy"
          % (outcome.performance_improvement * 100,
             outcome.energy_reduction * 100))


if __name__ == "__main__":
    main()
