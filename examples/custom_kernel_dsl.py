#!/usr/bin/env python
"""Bring your own kernel: analyse a custom loop written in the workload DSL.

The same declarative vocabulary the 29-workload suite uses is available to
describe your own hot loop, after which the full Needle pipeline (profile ->
rank -> braid -> frame -> simulate) applies unchanged.

Run:  python examples/custom_kernel_dsl.py
"""

from repro.frames import build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.profiling import PathProfiler, rank_paths
from repro.regions import build_braids
from repro.sim import OffloadSimulator
from repro.workloads import (
    Arith,
    ArraySpec,
    If,
    LoadVal,
    Reset,
    StoreVal,
    build_loop_kernel,
)


def main():
    # An image-filter-flavoured kernel: per pixel, a 3-tap blur plus an
    # edge-enhancement arm taken only on high-contrast pixels.
    segments = [
        Reset("pix"),
        LoadVal("img", dst="left", offset=0),
        LoadVal("img", dst="mid", offset=1),
        LoadVal("img", dst="right", offset=2),
        Arith(4, use="left", chained=False),
        Arith(4, use="mid", chained=False, acc="pix"),
        Arith(4, use="right", chained=False, acc="pix"),
        If(
            ("bit", "mid", 6),  # high-contrast pixels get the expensive arm
            then=[Arith(10, use="mid", chained=False, acc="pix")],
            els=[Arith(3, chained=False, acc="pix")],
        ),
        StoreVal("out", value="pix"),
    ]
    module, fn = build_loop_kernel(
        "custom",
        "blur_enhance",
        segments,
        arrays=[
            ArraySpec("img", 2048, init=[(i * 73) % 256 for i in range(2048)]),
            ArraySpec("out", 2048),
        ],
        int_accs=("acc", "pix"),
        return_var="pix",
    )

    profiler = PathProfiler([fn])
    recorder = TraceRecorder([fn])
    Interpreter(module, tracer=MultiTracer(profiler, recorder)).run(fn, [1024])
    profile = profiler.profile_for(fn)
    ranked = rank_paths(profile)

    print("paths executed:", profile.executed_paths)
    for p in ranked[:4]:
        print("  path %-3d cov %5.1f%%  ops %-3d  %s"
              % (p.path_id, p.coverage * 100, p.ops,
                 "->".join(b.name for b in p.blocks)))

    braid = build_braids(fn, ranked)[0]
    frame = build_frame(braid.region)
    print("\nbraid coverage %.1f%% over %d ops (%d guards, %d psi-selects)"
          % (braid.coverage * 100, frame.op_count, frame.guard_count,
             len(frame.psis)))

    outcome = OffloadSimulator().simulate_offload(
        "custom", profile, frame, "oracle", recorder.traces[fn],
        coverage=braid.coverage,
    )
    print("offload: %+.1f%% performance, %+.1f%% energy"
          % (outcome.performance_improvement * 100,
             outcome.energy_reduction * 100))


if __name__ == "__main__":
    main()
