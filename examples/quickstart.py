#!/usr/bin/env python
"""Quickstart: the whole Needle flow on a hand-written kernel.

Builds a small loop kernel in the mini SSA IR, profiles its Ball-Larus
paths, forms the hot path region and its Braid, lowers the Braid to a
software frame, maps it on the CGRA, and simulates whole-kernel offload.

Run:  python examples/quickstart.py
"""

from repro.frames import FrameExecutor, build_frame
from repro.interp import Interpreter, MultiTracer, TraceRecorder
from repro.ir import Constant, I32, IRBuilder, Module, format_function, verify_function
from repro.profiling import PathProfiler, rank_paths
from repro.regions import build_braids
from repro.sim import OffloadSimulator


def build_kernel():
    """saturating histogram: for i in 0..n:
    v = data[i]; if v > 200: hist[255]++ else hist[v//16] += weight(v)"""
    m = Module("quickstart")
    data = m.add_global("data", I32, 512, init=[(i * 37) % 256 for i in range(512)])
    hist = m.add_global("hist", I32, 256)

    fn = m.add_function("histogram", [("n", I32)], I32)
    b = IRBuilder(fn)
    entry = b.add_block("entry")
    header = b.add_block("header")
    body = b.add_block("body")
    saturate = b.add_block("saturate")
    normal = b.add_block("normal")
    latch = b.add_block("latch")
    exit_ = b.add_block("exit")

    b.set_block(entry)
    b.br(header)

    b.set_block(header)
    i = b.phi(I32, "i")
    total = b.phi(I32, "total")
    in_range = b.icmp("slt", i, fn.arg("n"))
    b.condbr(in_range, body, exit_)

    b.set_block(body)
    addr = b.gep(data, i, 4)
    v = b.load(I32, addr)
    big = b.icmp("sgt", v, 200)
    b.condbr(big, saturate, normal)

    b.set_block(saturate)
    sat_addr = b.gep(hist, 255, 4)
    old_s = b.load(I32, sat_addr)
    b.store(b.add(old_s, 1), sat_addr)
    b.br(latch)

    b.set_block(normal)
    bucket = b.sdiv(v, 16)
    weight = b.add(b.mul(v, 3), 1)
    n_addr = b.gep(hist, bucket, 4)
    old_n = b.load(I32, n_addr)
    b.store(b.add(old_n, weight), n_addr)
    b.br(latch)

    b.set_block(latch)
    total_next = b.add(total, 1)
    i_next = b.add(i, 1)
    b.br(header)

    i.add_incoming(entry, Constant(I32, 0))
    i.add_incoming(latch, i_next)
    total.add_incoming(entry, Constant(I32, 0))
    total.add_incoming(latch, total_next)

    b.set_block(exit_)
    b.ret(total)
    verify_function(fn)
    return m, fn


def main():
    m, fn = build_kernel()
    print("=== the kernel ===")
    print(format_function(fn))

    # 1. profile Ball-Larus paths
    profiler = PathProfiler([fn])
    recorder = TraceRecorder([fn])
    interp = Interpreter(m, tracer=MultiTracer(profiler, recorder))
    result = interp.run("histogram", [400])
    profile = profiler.profile_for(fn)
    print("\n=== profiling ===")
    print("kernel returned:", result)
    print("executed paths:", profile.executed_paths,
          "of", profile.numbering.total_paths, "static paths")

    # 2. rank paths by Pwt and show the winners
    ranked = rank_paths(profile)
    for p in ranked:
        print("  path %d: freq=%d ops=%d coverage=%.1f%%  blocks=%s"
              % (p.path_id, p.freq, p.ops, p.coverage * 100,
                 "->".join(blk.name for blk in p.blocks)))

    # 3. braid the hot same-entry/exit paths and lower to a frame
    braids = build_braids(fn, ranked)
    braid = braids[0]
    frame = build_frame(braid.region)
    print("\n=== braid frame ===")
    print("merged paths:", braid.n_paths, " coverage: %.1f%%" % (braid.coverage * 100))
    print("frame ops:", frame.op_count, " guards:", frame.guard_count,
          " psi-selects:", len(frame.psis), " cancelled phis:", frame.cancelled_phis)
    print("live-ins:", [v.name for v in frame.live_ins])
    print("live-outs:", [v.name for v in frame.live_outs])

    # 4. execute the frame once, atomically, against real memory
    ex = FrameExecutor(interp.memory, interp.global_base)
    live_ins = {phi: 0 for phi in braid.region.entry.phis}
    live_ins[fn.arg("n")] = 400
    outcome = ex.run(frame, live_ins)
    print("frame run:", "success" if outcome.success else "guard failure",
          "- stores logged:", outcome.stores_logged)

    # 5. simulate whole-kernel offload (Fig. 9 / Fig. 10 style numbers)
    sim = OffloadSimulator()
    outcome = sim.simulate_offload(
        "quickstart", profile, frame, "oracle", recorder.traces[fn],
        coverage=braid.coverage,
    )
    print("\n=== offload simulation ===")
    print("baseline host cycles : %.0f" % outcome.baseline_cycles)
    print("Needle cycles        : %.0f" % outcome.needle_cycles)
    print("performance improvement: %.1f%%" % (outcome.performance_improvement * 100))
    print("energy reduction       : %.1f%%" % (outcome.energy_reduction * 100))


if __name__ == "__main__":
    main()
