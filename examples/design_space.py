#!/usr/bin/env python
"""Accelerator design-space exploration over a Needle frame (Fig. 1, Step 3).

The same braid frame feeds two backends: the Table V CGRA model (how fast
does the shared fabric run it?) and the Aladdin-style pre-RTL estimator
(how would a fixed-function unit sized for exactly this frame trade latency
against power?).  The printed Pareto frontier is the sizing menu an
architect reads off.

Run:  python examples/design_space.py [workload]
"""

import sys

from repro import PipelineOptions, workloads
from repro.accel import AladdinEstimator, CGRAScheduler
from repro.reporting import format_table


def main(argv=None):
    name = (argv or sys.argv[1:] or ["456.hmmer"])[0]
    w = workloads.get(name)
    pipeline = PipelineOptions().build_pipeline()
    analysis = pipeline.analyse(w)
    frame = analysis.braid_frame
    print("%s: braid frame with %d ops (%d guards, %d memory ops)"
          % (w.name, frame.op_count, frame.guard_count, frame.store_count))

    # backend 1: the shared CGRA fabric
    sched = CGRAScheduler().schedule(frame)
    print("\nCGRA backend  : makespan %d cycles, II %d, %d configuration(s)"
          % (sched.cycles, sched.initiation_interval, sched.n_configs))

    # backend 2: fixed-function sizing via the Aladdin-style estimator
    est = AladdinEstimator()
    frontier = est.pareto(est.sweep(frame))
    rows = [
        (
            r.config.int_alus,
            r.config.fp_alus,
            r.config.mem_ports,
            r.latency_cycles,
            round(r.power_mw, 2),
            round(r.area_mm2, 3),
        )
        for r in frontier
    ]
    print("\nAladdin backend (latency/power Pareto):")
    print(format_table(
        ["ALUs", "FPUs", "mem ports", "latency", "power mW", "area mm2"],
        rows,
    ))
    best = frontier[0]
    print("\nfastest point: %d cycles at %.1f mW — %.2fx the CGRA's makespan"
          % (best.latency_cycles, best.power_mw,
             best.latency_cycles / max(1, sched.cycles)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
