#!/usr/bin/env python
"""Explore the Braid merge-depth trade-off of paper SIV-B.

For a chosen workload, sweep how many ranked paths the braid may absorb and
watch coverage climb while the region grows — then simulate each point to
see where merging stops paying.

Run:  python examples/braid_tradeoffs.py [workload] [--depths 1 2 4 8 all]
"""

import argparse
import sys

from repro import workloads
from repro.frames import build_frame
from repro.profiling import rank_paths
from repro.regions import build_braids
from repro.reporting import format_table
from repro.sim import OffloadSimulator
from repro.workloads import profile_workload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="blackscholes")
    parser.add_argument("--depths", nargs="*", default=["1", "2", "4", "8", "all"])
    args = parser.parse_args(argv)

    w = workloads.get(args.workload)
    profiled = profile_workload(w)
    ranked = rank_paths(profiled.paths)
    sim = OffloadSimulator()

    rows = []
    for spec in args.depths:
        depth = None if spec == "all" else int(spec)
        braids = build_braids(profiled.function, ranked, max_paths_per_braid=depth)
        top = braids[0]
        frame = build_frame(top.region)
        outcome = sim.simulate_offload(
            w.name, profiled.paths, frame, "oracle", profiled.trace,
            coverage=top.coverage,
        )
        rows.append(
            (
                spec,
                top.n_paths,
                top.coverage * 100,
                top.region.op_count,
                top.region.coverage_per_op * 1000,
                len(top.region.guard_branches()),
                len(top.region.internal_branches()),
                outcome.performance_improvement * 100,
                outcome.energy_reduction * 100,
            )
        )

    print(
        format_table(
            ["depth", "merged", "cov %", "ops", "cov/op (x1e3)", "guards",
             "IFs", "perf %", "energy %"],
            rows,
            title="Braid merge depth sweep: %s" % w.name,
        )
    )
    print(
        "\nReading the table: coverage (and usually performance) climbs as\n"
        "more sibling paths merge; coverage-per-op tells you when the extra\n"
        "fabric area stops paying for itself (paper SIV-B)."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
