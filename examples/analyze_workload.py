#!/usr/bin/env python
"""Full Needle analysis of one suite workload, printed as a report.

Run:  python examples/analyze_workload.py 470.lbm
      python examples/analyze_workload.py --list
"""

import argparse
import sys

from repro import PipelineOptions, workloads
from repro.analysis import branch_memory_stats, predication_stats
from repro.profiling import PathTraceAnalysis, path_overlap_count
from repro.regions import summarise_expansion


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="470.lbm",
                        help="paper name, e.g. 470.lbm or blackscholes")
    parser.add_argument("--list", action="store_true", help="list workloads")
    parser.add_argument("--top", type=int, default=5, help="paths to show")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent artifact cache")
    args = parser.parse_args(argv)

    if args.list:
        for name in workloads.all_names():
            w = workloads.get(name)
            print("%-20s %-8s %s" % (name, w.suite, w.description))
        return 0

    w = workloads.get(args.workload)
    # one options surface for the CLI and the API: flags map straight on
    pipeline = PipelineOptions(no_cache=args.no_cache).build_pipeline()
    analysis = pipeline.analyse(w)
    evaluation = pipeline.evaluate(w)
    fn = analysis.profiled.function

    print("=" * 64)
    print("%s  (%s) - %s" % (w.name, w.suite, w.description))
    print("=" * 64)

    print("\n-- step 1: what to specialise -----------------------------")
    profile = analysis.profiled.paths
    print("hot function        : %s (%d blocks, %d instructions)"
          % (fn.name, len(fn.blocks), fn.instruction_count))
    print("static paths        : %d" % profile.numbering.total_paths)
    print("executed paths      : %d over %d completions"
          % (profile.executed_paths, profile.total_executions))
    bm = branch_memory_stats(fn)
    pred = predication_stats(fn)
    print("Branch=>Mem         : %.1f    Mem=>Branch: %.1f"
          % (bm.avg_mem_dependent_on_branch, bm.avg_mem_branch_depends_on))
    print("predication bits    : %d forward, %d backward branches"
          % (pred.forward_branches, pred.backward_branches))

    print("\ntop paths by Pwt:")
    for p in analysis.ranked[: args.top]:
        print("  #%-6d freq=%-6d ops=%-4d branches=%-2d mem=%-3d cov=%5.1f%%"
              % (p.path_id, p.freq, p.ops, p.branch_count,
                 p.memory_op_count, p.coverage * 100))
    print("block overlap (C8)  : %.1f paths share a typical hot block"
          % path_overlap_count(analysis.ranked))

    exp = summarise_expansion(profile, analysis.ranked)
    trace = PathTraceAnalysis(profile.trace)
    print("successor bias      : %.0f%% (%s, %s path next) -> x%.2f ops"
          % (exp.bias * 100, exp.bias_bucket,
             "same" if exp.repeats_same_path else "different",
             exp.growth_factor))

    print("\n-- step 2: software frames --------------------------------")
    for label, frame in (("hot path", analysis.path_frame),
                         ("top braid", analysis.braid_frame)):
        if frame is None:
            continue
        print("%s frame: %d ops (%d guards, %d psi, %d undo-log, %d hoisted)"
              % (label, frame.op_count, frame.guard_count, len(frame.psis),
                 frame.undo_log_ops, frame.hoisted_op_count))
        print("    live-ins %d, live-outs %d, cancelled phis %d"
              % (len(frame.live_ins), len(frame.live_outs),
                 frame.cancelled_phis))
    braid = analysis.top_braid
    print("top braid merges %d paths for %.1f%% coverage"
          % (braid.n_paths, braid.coverage * 100))

    print("\n-- step 3: accelerator design analysis --------------------")
    sched = evaluation.braid_schedule
    print("CGRA schedule       : %d cycles makespan, II=%d, %d config(s)"
          % (sched.cycles, sched.initiation_interval, sched.n_configs))
    for label, outcome in (("path+oracle ", evaluation.path_oracle),
                           ("path+history", evaluation.path_history),
                           ("braid       ", evaluation.braid)):
        print("%s: perf %+6.1f%%  energy %+6.1f%%  (%d invocations, %d failed,"
              " precision %.0f%%)"
              % (label, outcome.performance_improvement * 100,
                 outcome.energy_reduction * 100, outcome.invocations,
                 outcome.failures, outcome.predictor_precision * 100))
    hls = evaluation.hls
    print("HLS estimate        : %d ALMs (%.0f%% of Cyclone V), %.0f mW"
          % (hls.alms, hls.alm_fraction * 100, hls.total_power_mw))
    return 0


if __name__ == "__main__":
    sys.exit(main())
